#include "dbms/planner.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace qa::dbms {

namespace {

CompareOp ToCompareOp(int op) {
  switch (op) {
    case 0:
      return CompareOp::kEq;
    case 1:
      return CompareOp::kNe;
    case 2:
      return CompareOp::kLt;
    case 3:
      return CompareOp::kLe;
    case 4:
      return CompareOp::kGt;
    default:
      return CompareOp::kGe;
  }
}

double FilterSelectivity(int op) { return op == 0 ? 0.1 : 0.3; }

/// One FROM-clause input after scan building.
struct PlannedInput {
  int table_index = 0;       // position in stmt.tables
  PlanPtr plan;              // scan (+ view projection)
  double est_rows = 0.0;
  double base_bytes = 0.0;   // disk bytes of the underlying base table
  double base_rows = 0.0;
};

double Log2Safe(double n) { return n > 2.0 ? std::log2(n) : 1.0; }

}  // namespace

Planner::Planner(const Database* db, PlannerOptions options)
    : db_(db), options_(options) {
  assert(db_ != nullptr);
}

util::StatusOr<PlannedQuery> Planner::Plan(const SelectStatement& stmt) const {
  if (stmt.tables.empty()) {
    return util::Status::InvalidArgument("statement needs a FROM clause");
  }

  ResourceEstimate acc;

  // ---- Build one input per FROM entry: scan + pushed filters (+ view
  // expansion).
  std::vector<PlannedInput> inputs;
  for (size_t t = 0; t < stmt.tables.size(); ++t) {
    const std::string& name = stmt.tables[t].name;

    // Gather this table's statement filters.
    std::vector<const SelectionPredicate*> filters;
    for (const SelectionPredicate& f : stmt.filters) {
      if (f.table == static_cast<int>(t)) filters.push_back(&f);
    }

    PlannedInput input;
    input.table_index = static_cast<int>(t);

    if (const Table* table = db_->GetTable(name)) {
      double selectivity = 1.0;
      std::vector<ExprPtr> preds;
      for (const SelectionPredicate* f : filters) {
        int col = table->schema().FindColumn(f->column);
        if (col < 0) {
          return util::Status::NotFound("no column " + f->column + " in " +
                                        name);
        }
        preds.push_back(Expr::Compare(ToCompareOp(f->op), Expr::Column(col),
                                      Expr::Literal(f->constant)));
        selectivity *= FilterSelectivity(f->op);
      }
      auto scan = std::make_unique<ScanNode>(name, table->schema(),
                                             Expr::AndAll(preds));
      input.base_rows = static_cast<double>(table->num_rows());
      input.base_bytes = static_cast<double>(table->EstimatedBytes());
      input.est_rows = input.base_rows * selectivity;
      scan->est_rows = input.est_rows;
      scan->est_bytes = input.base_bytes * selectivity;
      input.plan = std::move(scan);
    } else if (const ViewDef* view = db_->GetView(name)) {
      const Table* base = db_->GetTable(view->base_table);
      if (base == nullptr) {
        return util::Status::Internal("view over missing base table");
      }
      double selectivity = 1.0;
      std::vector<ExprPtr> preds;
      for (const ViewDef::Filter& f : view->filters) {
        int col = base->schema().FindColumn(f.column);
        assert(col >= 0 && "validated at CreateView");
        preds.push_back(Expr::Compare(ToCompareOp(f.op), Expr::Column(col),
                                      Expr::Literal(f.constant)));
        selectivity *= FilterSelectivity(f.op);
      }
      // The view's visible columns (empty = all of base).
      std::vector<std::string> columns = view->columns;
      if (columns.empty()) {
        for (const Column& c : base->schema().columns()) {
          columns.push_back(c.name);
        }
      }
      for (const SelectionPredicate* f : filters) {
        auto it = std::find(columns.begin(), columns.end(), f->column);
        if (it == columns.end()) {
          return util::Status::NotFound("no column " + f->column +
                                        " in view " + name);
        }
        int base_col = base->schema().FindColumn(f->column);
        preds.push_back(Expr::Compare(ToCompareOp(f->op),
                                      Expr::Column(base_col),
                                      Expr::Literal(f->constant)));
        selectivity *= FilterSelectivity(f->op);
      }
      auto scan = std::make_unique<ScanNode>(
          view->base_table, base->schema(), Expr::AndAll(preds));
      input.base_rows = static_cast<double>(base->num_rows());
      input.base_bytes = static_cast<double>(base->EstimatedBytes());
      input.est_rows = input.base_rows * selectivity;
      scan->est_rows = input.est_rows;
      scan->est_bytes = input.base_bytes * selectivity;

      std::vector<int> projection;
      for (const std::string& column : columns) {
        projection.push_back(base->schema().FindColumn(column));
      }
      auto project = std::make_unique<ProjectNode>(
          std::move(scan), projection, std::vector<std::string>());
      project->est_rows = input.est_rows;
      input.plan = std::move(project);
    } else {
      return util::Status::NotFound("no relation named " + name);
    }

    acc.io_bytes += input.base_bytes;
    acc.cpu_tuples += input.base_rows;  // scan + filter work
    inputs.push_back(std::move(input));
  }

  // ---- Greedy left-deep join ordering: start from the smallest input,
  // prefer inputs connected to the joined prefix, smallest first.
  std::vector<bool> used(inputs.size(), false);
  std::vector<int> global_offset(inputs.size(), -1);

  auto connected = [&](int candidate) {
    for (const JoinPredicate& jp : stmt.joins) {
      int a = jp.left_table;
      int b = jp.right_table;
      bool cand_a = a == inputs[static_cast<size_t>(candidate)].table_index;
      bool cand_b = b == inputs[static_cast<size_t>(candidate)].table_index;
      if (!cand_a && !cand_b) continue;
      int other = cand_a ? b : a;
      for (size_t i = 0; i < inputs.size(); ++i) {
        if (used[i] && inputs[i].table_index == other) return true;
      }
    }
    return false;
  };

  size_t first = 0;
  for (size_t i = 1; i < inputs.size(); ++i) {
    if (inputs[i].est_rows < inputs[first].est_rows) first = i;
  }
  used[first] = true;
  global_offset[static_cast<size_t>(inputs[first].table_index)] = 0;
  PlanPtr current = std::move(inputs[first].plan);
  double current_rows = inputs[first].est_rows;
  int current_width = current->output_schema().num_columns();

  // Visible schemas per table index (stable across moves).
  std::vector<Schema> visible(stmt.tables.size());
  for (size_t t = 0; t < stmt.tables.size(); ++t) {
    util::StatusOr<Schema> schema = db_->RelationSchema(stmt.tables[t].name);
    if (!schema.ok()) return schema.status();
    visible[t] = std::move(schema).value();
  }
  auto resolve_global = [&](int table_index, const std::string& column,
                            int* out) -> util::Status {
    int offset = global_offset[static_cast<size_t>(table_index)];
    if (offset < 0) {
      return util::Status::Internal("table not yet joined");
    }
    int col = visible[static_cast<size_t>(table_index)].FindColumn(column);
    if (col < 0) {
      return util::Status::NotFound(
          "no column " + column + " in " +
          stmt.tables[static_cast<size_t>(table_index)].name);
    }
    *out = offset + col;
    return util::Status::OK();
  };

  for (size_t step = 1; step < inputs.size(); ++step) {
    // Pick the next input.
    int next = -1;
    bool next_connected = false;
    for (size_t i = 0; i < inputs.size(); ++i) {
      if (used[i]) continue;
      bool conn = connected(static_cast<int>(i));
      if (next < 0 || (conn && !next_connected) ||
          (conn == next_connected &&
           inputs[i].est_rows < inputs[static_cast<size_t>(next)].est_rows)) {
        next = static_cast<int>(i);
        next_connected = conn;
      }
    }
    assert(next >= 0);
    PlannedInput& input = inputs[static_cast<size_t>(next)];
    used[static_cast<size_t>(next)] = true;
    global_offset[static_cast<size_t>(input.table_index)] = current_width;

    // Collect the join predicates linking this input to the prefix.
    std::vector<const JoinPredicate*> preds;
    for (const JoinPredicate& jp : stmt.joins) {
      bool new_left = jp.left_table == input.table_index;
      bool new_right = jp.right_table == input.table_index;
      if (!new_left && !new_right) continue;
      int other = new_left ? jp.right_table : jp.left_table;
      if (global_offset[static_cast<size_t>(other)] >= 0 &&
          other != input.table_index) {
        preds.push_back(&jp);
      }
    }

    double rhs_rows = input.est_rows;
    PlanPtr joined;
    if (!preds.empty()) {
      // Equi join on the first predicate. Keys: left side lives in the
      // current prefix, right side in the new input.
      const JoinPredicate& jp = *preds[0];
      bool new_is_right = jp.right_table == input.table_index;
      int prefix_table = new_is_right ? jp.left_table : jp.right_table;
      const std::string& prefix_col =
          new_is_right ? jp.left_column : jp.right_column;
      const std::string& new_col =
          new_is_right ? jp.right_column : jp.left_column;

      int left_key = 0;
      QA_RETURN_IF_ERROR(resolve_global(prefix_table, prefix_col, &left_key));
      int right_key =
          visible[static_cast<size_t>(input.table_index)].FindColumn(new_col);
      if (right_key < 0) {
        return util::Status::NotFound("no join column " + new_col);
      }

      if (options_.use_hash_join) {
        acc.cpu_tuples += 2.0 * (current_rows + rhs_rows);
        joined = std::make_unique<HashJoinNode>(
            std::move(current), std::move(input.plan), left_key, right_key);
      } else {
        acc.cpu_tuples += current_rows * Log2Safe(current_rows) +
                          rhs_rows * Log2Safe(rhs_rows);
        joined = std::make_unique<MergeJoinNode>(
            std::move(current), std::move(input.plan), left_key, right_key);
      }
      current_rows = std::max(current_rows, rhs_rows);
    } else {
      // No connecting predicate: cross product.
      acc.cpu_tuples += current_rows * rhs_rows;
      joined = std::make_unique<NestedLoopJoinNode>(
          std::move(current), std::move(input.plan), nullptr);
      current_rows = current_rows * rhs_rows;
    }
    joined->est_rows = current_rows;
    current = std::move(joined);
    current_width = current->output_schema().num_columns();

    // Remaining equi predicates become filters above the join.
    for (size_t p = 1; p < preds.size(); ++p) {
      const JoinPredicate& jp = *preds[p];
      int a = 0;
      int b = 0;
      QA_RETURN_IF_ERROR(resolve_global(jp.left_table, jp.left_column, &a));
      QA_RETURN_IF_ERROR(resolve_global(jp.right_table, jp.right_column, &b));
      auto filter = std::make_unique<FilterNode>(
          std::move(current),
          Expr::Compare(CompareOp::kEq, Expr::Column(a), Expr::Column(b)));
      acc.cpu_tuples += current_rows;
      current_rows *= 0.1;
      filter->est_rows = current_rows;
      current = std::move(filter);
    }
  }

  // ---- Grouping or projection/sort tail.
  if (stmt.has_grouping()) {
    std::vector<int> keys;
    for (const ColumnRef& ref : stmt.group_by) {
      int g = 0;
      QA_RETURN_IF_ERROR(resolve_global(ref.table, ref.column, &g));
      keys.push_back(g);
    }
    std::vector<GroupByNode::Agg> aggs;
    for (const Aggregate& agg : stmt.aggregates) {
      GroupByNode::Agg out;
      out.fn = agg.fn;
      if (agg.fn == Aggregate::Fn::kCount && agg.arg.column.empty()) {
        out.column = -1;
        out.output_name = "count";
      } else {
        int g = 0;
        QA_RETURN_IF_ERROR(resolve_global(agg.arg.table, agg.arg.column, &g));
        out.column = g;
        out.output_name = agg.arg.column + "_agg";
      }
      aggs.push_back(std::move(out));
    }
    acc.cpu_tuples += current_rows;
    auto group = std::make_unique<GroupByNode>(std::move(current), keys,
                                               std::move(aggs));
    double group_rows = keys.empty() ? 1.0 : std::max(1.0, current_rows * 0.1);
    group->est_rows = group_rows;
    current = std::move(group);
    current_rows = group_rows;

    if (!stmt.order_by.empty()) {
      // Order by group keys only (positional match against `keys`).
      std::vector<SortKey> sort_keys;
      for (const OrderItem& item : stmt.order_by) {
        for (size_t k = 0; k < stmt.group_by.size(); ++k) {
          if (stmt.group_by[k].table == item.column.table &&
              stmt.group_by[k].column == item.column.column) {
            sort_keys.push_back({static_cast<int>(k), item.descending});
          }
        }
      }
      if (!sort_keys.empty()) {
        acc.cpu_tuples += current_rows * Log2Safe(current_rows);
        auto sort = std::make_unique<SortNode>(std::move(current),
                                               std::move(sort_keys));
        sort->est_rows = current_rows;
        current = std::move(sort);
      }
    }
  } else {
    if (!stmt.order_by.empty()) {
      std::vector<SortKey> sort_keys;
      for (const OrderItem& item : stmt.order_by) {
        int g = 0;
        QA_RETURN_IF_ERROR(
            resolve_global(item.column.table, item.column.column, &g));
        sort_keys.push_back({g, item.descending});
      }
      acc.cpu_tuples += current_rows * Log2Safe(current_rows);
      auto sort = std::make_unique<SortNode>(std::move(current),
                                             std::move(sort_keys));
      sort->est_rows = current_rows;
      current = std::move(sort);
    }
    if (!stmt.projections.empty()) {
      std::vector<int> cols;
      std::vector<std::string> names;
      for (const ColumnRef& ref : stmt.projections) {
        int g = 0;
        QA_RETURN_IF_ERROR(resolve_global(ref.table, ref.column, &g));
        cols.push_back(g);
        names.push_back(ref.column);
      }
      acc.cpu_tuples += current_rows;
      auto project = std::make_unique<ProjectNode>(std::move(current), cols,
                                                   std::move(names));
      project->est_rows = current_rows;
      current = std::move(project);
    } else if (stmt.tables.size() > 1) {
      // SELECT *: the join order may differ from the FROM order, but the
      // output columns must follow the FROM clause. Restore it with a
      // projection when the layouts differ.
      std::vector<int> from_order;
      for (size_t t = 0; t < stmt.tables.size(); ++t) {
        int offset = global_offset[t];
        for (int c = 0; c < visible[t].num_columns(); ++c) {
          from_order.push_back(offset + c);
        }
      }
      bool identity = true;
      for (size_t i = 0; i < from_order.size(); ++i) {
        if (from_order[i] != static_cast<int>(i)) {
          identity = false;
          break;
        }
      }
      if (!identity) {
        auto project = std::make_unique<ProjectNode>(
            std::move(current), from_order, std::vector<std::string>());
        project->est_rows = current_rows;
        current = std::move(project);
      }
    }
  }

  if (stmt.limit >= 0) {
    auto limit = std::make_unique<LimitNode>(std::move(current), stmt.limit);
    current_rows = std::min(current_rows, static_cast<double>(stmt.limit));
    limit->est_rows = current_rows;
    current = std::move(limit);
  }

  acc.out_rows = current_rows;

  PlannedQuery result;
  result.signature = current->Signature();
  result.plan = std::move(current);
  result.estimate = acc;
  return result;
}

util::StatusOr<ExplainResult> Planner::Explain(
    const SelectStatement& stmt) const {
  util::StatusOr<PlannedQuery> planned = Plan(stmt);
  if (!planned.ok()) return planned.status();
  ExplainResult result;
  result.text = planned->plan->Describe(0);
  result.signature = planned->signature;
  result.estimate = planned->estimate;
  return result;
}

}  // namespace qa::dbms
