#ifndef QAMARKET_DBMS_ENGINE_H_
#define QAMARKET_DBMS_ENGINE_H_

#include <string>

#include "dbms/database.h"
#include "dbms/plan.h"
#include "dbms/planner.h"
#include "util/status.h"

namespace qa::dbms {

/// The result of running one statement end to end.
struct QueryResult {
  Table table;
  ExecStats stats;
  ResourceEstimate estimate;
  std::string signature;
};

/// Plans and executes `stmt` against `db` (the minidb "front door").
util::StatusOr<QueryResult> ExecuteStatement(const Database& db,
                                             const SelectStatement& stmt,
                                             PlannerOptions options = {});

}  // namespace qa::dbms

#endif  // QAMARKET_DBMS_ENGINE_H_
