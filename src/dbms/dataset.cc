#include "dbms/dataset.h"

#include <algorithm>
#include <cassert>

namespace qa::dbms {

Schema Fig7TableSchema() {
  return Schema({{"id", ValueType::kInt},
                 {"fk0", ValueType::kInt},
                 {"fk1", ValueType::kInt},
                 {"fk2", ValueType::kInt},
                 {"cat", ValueType::kInt},
                 {"val", ValueType::kDouble}});
}

namespace {

Table MakeTable(const std::string& name, int rows, int num_categories,
                util::Rng& rng) {
  Table table(name, Fig7TableSchema());
  table.Reserve(rows);
  for (int i = 0; i < rows; ++i) {
    Row row;
    row.push_back(Value(static_cast<int64_t>(i)));
    for (int f = 0; f < 3; ++f) {
      row.push_back(Value(rng.UniformInt(0, 2999)));
    }
    row.push_back(Value(rng.UniformInt(0, num_categories - 1)));
    row.push_back(Value(rng.UniformReal(0.0, 1000.0)));
    table.AppendUnchecked(std::move(row));
  }
  return table;
}

std::string TableName(int i) { return "t" + std::to_string(i); }
std::string ViewName(int i) { return "v" + std::to_string(i); }

}  // namespace

Fig7Dataset BuildFig7Dataset(const DatasetConfig& config, util::Rng& rng) {
  Fig7Dataset dataset;
  dataset.node_dbs.resize(static_cast<size_t>(config.num_nodes));

  // ---- Base tables, placed on min..max random nodes each.
  std::vector<Table> tables;
  for (int t = 0; t < config.num_tables; ++t) {
    int rows =
        static_cast<int>(rng.UniformInt(config.min_rows, config.max_rows));
    tables.push_back(MakeTable(TableName(t), rows, config.num_categories,
                               rng));
    int copies = static_cast<int>(
        rng.UniformInt(config.min_copies,
                       std::min(config.max_copies, config.num_nodes)));
    std::vector<int> holders = rng.Sample(config.num_nodes, copies);
    std::sort(holders.begin(), holders.end());
    dataset.placement[TableName(t)] = holders;
  }

  // ---- Views: select-project over a base table; placed on a subset of
  // nodes that hold the base table.
  struct PendingView {
    ViewDef def;
    std::vector<int> holders;
  };
  std::vector<PendingView> views;
  for (int v = 0; v < config.num_views; ++v) {
    int base = static_cast<int>(rng.UniformInt(0, config.num_tables - 1));
    ViewDef def;
    def.name = ViewName(v);
    def.base_table = TableName(base);
    def.columns = {"id", "cat", "val"};
    if (rng.Bernoulli(0.5)) {
      ViewDef::Filter filter;
      filter.column = "cat";
      filter.op = 3;  // <=
      filter.constant =
          Value(rng.UniformInt(config.num_categories / 2,
                               config.num_categories - 1));
      def.filters.push_back(std::move(filter));
    }
    const std::vector<int>& base_holders =
        dataset.placement[def.base_table];
    int copies = static_cast<int>(rng.UniformInt(
        1, static_cast<int64_t>(base_holders.size())));
    std::vector<int> picks =
        rng.Sample(static_cast<int>(base_holders.size()), copies);
    std::vector<int> holders;
    for (int p : picks) holders.push_back(base_holders[static_cast<size_t>(p)]);
    std::sort(holders.begin(), holders.end());
    dataset.placement[def.name] = holders;
    views.push_back({std::move(def), std::move(holders)});
  }

  // ---- Materialize per-node databases.
  for (int n = 0; n < config.num_nodes; ++n) {
    Database& db = dataset.node_dbs[static_cast<size_t>(n)];
    for (int t = 0; t < config.num_tables; ++t) {
      const std::vector<int>& holders = dataset.placement[TableName(t)];
      if (std::find(holders.begin(), holders.end(), n) != holders.end()) {
        // Copy the table into this node's database.
        Table copy(tables[static_cast<size_t>(t)].name(),
                   tables[static_cast<size_t>(t)].schema());
        copy.Reserve(tables[static_cast<size_t>(t)].num_rows());
        for (const Row& row : tables[static_cast<size_t>(t)].rows()) {
          copy.AppendUnchecked(row);
        }
        util::Status status = db.CreateTable(std::move(copy));
        assert(status.ok());
        (void)status;
      }
    }
    for (const PendingView& pv : views) {
      if (std::find(pv.holders.begin(), pv.holders.end(), n) !=
          pv.holders.end()) {
        util::Status status = db.CreateView(pv.def);
        assert(status.ok());
        (void)status;
      }
    }
  }

  // ---- Star-query templates anchored at nodes.
  for (int t = 0; t < config.num_templates; ++t) {
    int anchor =
        static_cast<int>(rng.UniformInt(0, config.num_nodes - 1));
    const Database& db = dataset.node_dbs[static_cast<size_t>(anchor)];
    std::vector<std::string> local_tables = db.TableNames();
    std::vector<std::string> local_views = db.ViewNames();
    assert(!local_tables.empty());

    // Fact = a local base table; dimensions = local tables or views.
    std::string fact = local_tables[static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(local_tables.size()) - 1))];
    int dims = static_cast<int>(
        rng.UniformInt(config.min_dims, config.max_dims));

    StatementBuilder builder;
    builder.From(fact);
    for (int d = 0; d < dims; ++d) {
      bool use_view = !local_views.empty() && rng.Bernoulli(0.5);
      std::string dim =
          use_view
              ? local_views[static_cast<size_t>(rng.UniformInt(
                    0, static_cast<int64_t>(local_views.size()) - 1))]
              : local_tables[static_cast<size_t>(rng.UniformInt(
                    0, static_cast<int64_t>(local_tables.size()) - 1))];
      builder.From(dim);
      builder.Join(0, "fk" + std::to_string(d % 3), d + 1, "id");
    }
    // Selection on the fact's category (constant re-drawn per instance).
    builder.Where(0, "cat", 3, Value(int64_t{5}));
    // Project-group: group by a dimension's category, aggregate the fact.
    builder.GroupBy(1, "cat");
    builder.Agg(Aggregate::Fn::kSum, 0, "val");
    builder.Agg(Aggregate::Fn::kCount, 0, "id");
    builder.OrderBy(1, "cat");
    SelectStatement stmt = builder.Build();

    // Eligible nodes: those holding every referenced relation.
    std::vector<int> eligible;
    for (int n = 0; n < config.num_nodes; ++n) {
      bool ok = true;
      for (const TableRef& ref : stmt.tables) {
        const std::vector<int>& holders = dataset.placement[ref.name];
        if (std::find(holders.begin(), holders.end(), n) == holders.end()) {
          ok = false;
          break;
        }
      }
      if (ok) eligible.push_back(n);
    }
    assert(!eligible.empty());
    dataset.templates.push_back(std::move(stmt));
    dataset.template_nodes.push_back(std::move(eligible));
  }
  return dataset;
}

SelectStatement InstantiateTemplate(const Fig7Dataset& dataset, int t,
                                    const DatasetConfig& config,
                                    util::Rng& rng) {
  SelectStatement stmt = dataset.templates[static_cast<size_t>(t)];
  for (SelectionPredicate& filter : stmt.filters) {
    filter.constant =
        Value(rng.UniformInt(config.num_categories / 3,
                             config.num_categories - 1));
  }
  return stmt;
}

}  // namespace qa::dbms
