#include "dbms/database.h"

namespace qa::dbms {

util::Status Database::CreateTable(Table table) {
  if (table.name().empty()) {
    return util::Status::InvalidArgument("table needs a name");
  }
  if (HasRelation(table.name())) {
    return util::Status::AlreadyExists("relation " + table.name() +
                                       " already exists");
  }
  std::string name = table.name();
  tables_.emplace(std::move(name), std::move(table));
  return util::Status::OK();
}

util::Status Database::CreateView(ViewDef view) {
  if (view.name.empty()) {
    return util::Status::InvalidArgument("view needs a name");
  }
  if (HasRelation(view.name)) {
    return util::Status::AlreadyExists("relation " + view.name +
                                       " already exists");
  }
  const Table* base = GetTable(view.base_table);
  if (base == nullptr) {
    return util::Status::NotFound("view " + view.name +
                                  " references missing table " +
                                  view.base_table);
  }
  for (const std::string& column : view.columns) {
    if (base->schema().FindColumn(column) < 0) {
      return util::Status::NotFound("view " + view.name +
                                    " references missing column " + column);
    }
  }
  for (const ViewDef::Filter& filter : view.filters) {
    if (base->schema().FindColumn(filter.column) < 0) {
      return util::Status::NotFound("view " + view.name +
                                    " filters on missing column " +
                                    filter.column);
    }
  }
  std::string name = view.name;
  views_.emplace(std::move(name), std::move(view));
  return util::Status::OK();
}

const Table* Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

Table* Database::MutableTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

const ViewDef* Database::GetView(const std::string& name) const {
  auto it = views_.find(name);
  return it == views_.end() ? nullptr : &it->second;
}

util::StatusOr<Schema> Database::RelationSchema(
    const std::string& name) const {
  if (const Table* table = GetTable(name)) return table->schema();
  if (const ViewDef* view = GetView(name)) {
    const Table* base = GetTable(view->base_table);
    if (base == nullptr) {
      return util::Status::Internal("view over missing base table");
    }
    if (view->columns.empty()) return base->schema();
    std::vector<Column> cols;
    for (const std::string& column : view->columns) {
      cols.push_back(
          base->schema().column(base->schema().FindColumn(column)));
    }
    return Schema(std::move(cols));
  }
  return util::Status::NotFound("no relation named " + name);
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

std::vector<std::string> Database::ViewNames() const {
  std::vector<std::string> names;
  for (const auto& [name, view] : views_) names.push_back(name);
  return names;
}

int64_t Database::TotalBytes() const {
  int64_t total = 0;
  for (const auto& [name, table] : tables_) total += table.EstimatedBytes();
  return total;
}

}  // namespace qa::dbms
