#include "dbms/lexer.h"

#include <algorithm>
#include <cctype>

namespace qa::dbms {

namespace {

const char* const kKeywords[] = {
    "SELECT", "FROM", "WHERE", "JOIN",  "ON",    "AND",   "GROUP",
    "BY",     "ORDER", "AS",   "COUNT", "SUM",   "MIN",   "MAX",
    "AVG",    "ASC",  "DESC",  "LIMIT",
};

bool IsKeywordWord(const std::string& upper) {
  for (const char* kw : kKeywords) {
    if (upper == kw) return true;
  }
  return false;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

util::StatusOr<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < sql.size()) {
    char c = sql[i];
    int offset = static_cast<int>(i) + 1;
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < sql.size() && IsIdentChar(sql[i])) ++i;
      std::string word = sql.substr(start, i - start);
      std::string upper = word;
      std::transform(upper.begin(), upper.end(), upper.begin(),
                     [](unsigned char ch) { return std::toupper(ch); });
      if (IsKeywordWord(upper)) {
        tokens.push_back({TokenType::kKeyword, upper, offset});
      } else {
        tokens.push_back({TokenType::kIdentifier, word, offset});
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < sql.size() &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      if (c == '-') ++i;
      bool is_float = false;
      while (i < sql.size() &&
             (std::isdigit(static_cast<unsigned char>(sql[i])) ||
              sql[i] == '.')) {
        if (sql[i] == '.') {
          if (is_float) break;  // second dot ends the number
          is_float = true;
        }
        ++i;
      }
      tokens.push_back({is_float ? TokenType::kFloat : TokenType::kInteger,
                        sql.substr(start, i - start), offset});
      continue;
    }
    if (c == '\'') {
      size_t end = sql.find('\'', i + 1);
      if (end == std::string::npos) {
        return util::Status::InvalidArgument(
            "unterminated string literal at position " +
            std::to_string(offset));
      }
      tokens.push_back(
          {TokenType::kString, sql.substr(i + 1, end - i - 1), offset});
      i = end + 1;
      continue;
    }
    // Multi-char operators first.
    if (i + 1 < sql.size()) {
      std::string two = sql.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
        tokens.push_back({TokenType::kSymbol, two, offset});
        i += 2;
        continue;
      }
    }
    if (std::string("=<>(),.*").find(c) != std::string::npos) {
      tokens.push_back({TokenType::kSymbol, std::string(1, c), offset});
      ++i;
      continue;
    }
    return util::Status::InvalidArgument(
        std::string("unexpected character '") + c + "' at position " +
        std::to_string(offset));
  }
  tokens.push_back({TokenType::kEnd, "", static_cast<int>(sql.size()) + 1});
  return tokens;
}

}  // namespace qa::dbms
