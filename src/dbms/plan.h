#ifndef QAMARKET_DBMS_PLAN_H_
#define QAMARKET_DBMS_PLAN_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dbms/expr.h"
#include "dbms/query_ast.h"
#include "dbms/table.h"

namespace qa::dbms {

class Database;

/// Counters collected while executing a physical plan. The per-table byte
/// counts feed the buffer-pool model: a node's actual I/O time depends on
/// which of these tables were cached (exactly the effect the paper saw
/// EXPLAIN PLAN miss, §5.2).
struct ExecStats {
  int64_t rows_scanned = 0;
  /// Bytes read per base table (before cache adjustment).
  std::map<std::string, int64_t> table_bytes;
  int64_t hash_build_rows = 0;
  int64_t hash_probe_rows = 0;
  int64_t nested_loop_compares = 0;
  int64_t rows_sorted = 0;
  int64_t rows_grouped = 0;
  int64_t output_rows = 0;

  int64_t TotalTableBytes() const;
};

/// A node of a physical query plan. Execution is materialized: each
/// operator consumes its children's full output tables.
class PlanNode {
 public:
  virtual ~PlanNode() = default;

  const Schema& output_schema() const { return output_schema_; }

  /// Cardinality/size estimates filled in by the planner (these are what
  /// EXPLAIN reports; they deliberately know nothing about caching).
  double est_rows = 0.0;
  double est_bytes = 0.0;

  virtual Table Execute(const Database& db, ExecStats* stats) const = 0;

  /// Multi-line EXPLAIN-style rendering.
  virtual std::string Describe(int indent = 0) const = 0;

  /// Appends this subtree's shape (operators + table names, no constants)
  /// to `out`; equal signatures identify "queries with the same plan" for
  /// the execution-history estimator (§5.2).
  virtual void AppendSignature(std::string* out) const = 0;

  std::string Signature() const {
    std::string s;
    AppendSignature(&s);
    return s;
  }

 protected:
  Schema output_schema_;
};

using PlanPtr = std::unique_ptr<PlanNode>;

/// Sequential scan of a base table, with an optional pushed-down filter.
class ScanNode : public PlanNode {
 public:
  ScanNode(std::string table_name, Schema schema, ExprPtr filter);

  Table Execute(const Database& db, ExecStats* stats) const override;
  std::string Describe(int indent) const override;
  void AppendSignature(std::string* out) const override;

  const std::string& table_name() const { return table_name_; }

 private:
  std::string table_name_;
  ExprPtr filter_;  // may be null
};

/// Hash join on single-column equi keys (build = left input).
class HashJoinNode : public PlanNode {
 public:
  HashJoinNode(PlanPtr left, PlanPtr right, int left_key, int right_key);

  Table Execute(const Database& db, ExecStats* stats) const override;
  std::string Describe(int indent) const override;
  void AppendSignature(std::string* out) const override;

 private:
  PlanPtr left_;
  PlanPtr right_;
  int left_key_;
  int right_key_;
};

/// Sort-merge join on single-column equi keys (the fallback when a node
/// lacks hash-join capability; also exercised directly by tests).
class MergeJoinNode : public PlanNode {
 public:
  MergeJoinNode(PlanPtr left, PlanPtr right, int left_key, int right_key);

  Table Execute(const Database& db, ExecStats* stats) const override;
  std::string Describe(int indent) const override;
  void AppendSignature(std::string* out) const override;

 private:
  PlanPtr left_;
  PlanPtr right_;
  int left_key_;
  int right_key_;
};

/// Nested-loop join with an arbitrary predicate (null = cross product).
class NestedLoopJoinNode : public PlanNode {
 public:
  NestedLoopJoinNode(PlanPtr left, PlanPtr right, ExprPtr predicate);

  Table Execute(const Database& db, ExecStats* stats) const override;
  std::string Describe(int indent) const override;
  void AppendSignature(std::string* out) const override;

 private:
  PlanPtr left_;
  PlanPtr right_;
  ExprPtr predicate_;
};

/// Filter over an arbitrary child.
class FilterNode : public PlanNode {
 public:
  FilterNode(PlanPtr child, ExprPtr predicate);

  Table Execute(const Database& db, ExecStats* stats) const override;
  std::string Describe(int indent) const override;
  void AppendSignature(std::string* out) const override;

 private:
  PlanPtr child_;
  ExprPtr predicate_;
};

/// Projection to a list of child-output columns (optionally renamed).
class ProjectNode : public PlanNode {
 public:
  ProjectNode(PlanPtr child, std::vector<int> columns,
              std::vector<std::string> names);

  Table Execute(const Database& db, ExecStats* stats) const override;
  std::string Describe(int indent) const override;
  void AppendSignature(std::string* out) const override;

 private:
  PlanPtr child_;
  std::vector<int> columns_;
};

/// Sort key: a child column plus direction.
struct SortKey {
  int column = 0;
  bool descending = false;
};

/// Full sort on a key list.
class SortNode : public PlanNode {
 public:
  SortNode(PlanPtr child, std::vector<SortKey> keys);
  /// Convenience: ascending sort on a plain column list.
  SortNode(PlanPtr child, std::vector<int> columns);

  Table Execute(const Database& db, ExecStats* stats) const override;
  std::string Describe(int indent) const override;
  void AppendSignature(std::string* out) const override;

 private:
  PlanPtr child_;
  std::vector<SortKey> keys_;
};

/// Emits at most `limit` rows of its child.
class LimitNode : public PlanNode {
 public:
  LimitNode(PlanPtr child, int64_t limit);

  Table Execute(const Database& db, ExecStats* stats) const override;
  std::string Describe(int indent) const override;
  void AppendSignature(std::string* out) const override;

 private:
  PlanPtr child_;
  int64_t limit_;
};

/// Hash aggregation: GROUP BY `keys` computing `aggregates` over child
/// columns. With empty keys, a single global group.
class GroupByNode : public PlanNode {
 public:
  struct Agg {
    Aggregate::Fn fn;
    /// Child column the aggregate reads (-1 for COUNT(*)).
    int column;
    std::string output_name;
  };

  GroupByNode(PlanPtr child, std::vector<int> keys, std::vector<Agg> aggs);

  Table Execute(const Database& db, ExecStats* stats) const override;
  std::string Describe(int indent) const override;
  void AppendSignature(std::string* out) const override;

 private:
  PlanPtr child_;
  std::vector<int> keys_;
  std::vector<Agg> aggs_;
};

}  // namespace qa::dbms

#endif  // QAMARKET_DBMS_PLAN_H_
