#include "dbms/buffer_pool.h"

namespace qa::dbms {

int64_t BufferPool::Access(const std::string& table, int64_t bytes) {
  auto it = entries_.find(table);
  if (it != entries_.end()) {
    // Hit: refresh LRU position. If the table grew since caching, treat the
    // delta as a miss-read and update the footprint.
    lru_.erase(it->second.lru_it);
    lru_.push_front(table);
    it->second.lru_it = lru_.begin();
    int64_t delta = bytes - it->second.bytes;
    if (delta > 0) {
      used_ += delta;
      it->second.bytes = bytes;
      EvictUntilFits(0);
    }
    ++hits_;
    return delta > 0 ? delta : 0;
  }

  ++misses_;
  if (bytes <= capacity_) {
    EvictUntilFits(bytes);
    lru_.push_front(table);
    entries_[table] = Entry{bytes, lru_.begin()};
    used_ += bytes;
  }
  return bytes;
}

void BufferPool::EvictUntilFits(int64_t incoming) {
  while (used_ + incoming > capacity_ && !lru_.empty()) {
    const std::string& victim = lru_.back();
    auto it = entries_.find(victim);
    used_ -= it->second.bytes;
    entries_.erase(it);
    lru_.pop_back();
  }
}

void BufferPool::Clear() {
  lru_.clear();
  entries_.clear();
  used_ = 0;
}

}  // namespace qa::dbms
