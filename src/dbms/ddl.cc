#include "dbms/ddl.h"

#include <algorithm>
#include <cctype>

#include "dbms/lexer.h"
#include "dbms/parser.h"

namespace qa::dbms {

namespace {

std::string UpperPrefix(const std::string& sql) {
  std::string word;
  for (char c : sql) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!word.empty()) break;
      continue;
    }
    word.push_back(
        static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    if (word.size() > 8) break;
  }
  return word;
}

/// Hand-rolled scanner for the (tiny) DDL/DML surface; uses the SQL lexer
/// but drives it with its own cursor since CREATE/INSERT/INTO/VALUES are
/// not SELECT keywords.
class DdlParser {
 public:
  explicit DdlParser(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  util::StatusOr<CreateTableStatement> ParseCreate() {
    QA_RETURN_IF_ERROR(ExpectWord("CREATE"));
    QA_RETURN_IF_ERROR(ExpectWord("TABLE"));
    CreateTableStatement stmt;
    QA_RETURN_IF_ERROR(Identifier(&stmt.name));
    QA_RETURN_IF_ERROR(ExpectSymbol("("));
    while (true) {
      Column column;
      QA_RETURN_IF_ERROR(Identifier(&column.name));
      std::string type;
      QA_RETURN_IF_ERROR(Word(&type));
      if (type == "INT" || type == "INTEGER") {
        column.type = ValueType::kInt;
      } else if (type == "DOUBLE" || type == "FLOAT" || type == "REAL") {
        column.type = ValueType::kDouble;
      } else if (type == "STRING" || type == "TEXT" || type == "VARCHAR") {
        column.type = ValueType::kString;
      } else {
        return Error("unknown column type " + type);
      }
      stmt.columns.push_back(std::move(column));
      if (AcceptSymbol(",")) continue;
      QA_RETURN_IF_ERROR(ExpectSymbol(")"));
      break;
    }
    QA_RETURN_IF_ERROR(End());
    if (stmt.columns.empty()) {
      return Error("table needs at least one column");
    }
    return stmt;
  }

  util::StatusOr<InsertStatement> ParseInsert() {
    QA_RETURN_IF_ERROR(ExpectWord("INSERT"));
    QA_RETURN_IF_ERROR(ExpectWord("INTO"));
    InsertStatement stmt;
    QA_RETURN_IF_ERROR(Identifier(&stmt.table));
    QA_RETURN_IF_ERROR(ExpectWord("VALUES"));
    while (true) {
      QA_RETURN_IF_ERROR(ExpectSymbol("("));
      Row row;
      while (true) {
        const Token& token = Peek();
        switch (token.type) {
          case TokenType::kInteger:
            row.push_back(Value(static_cast<int64_t>(
                std::stoll(token.text))));
            break;
          case TokenType::kFloat:
            row.push_back(Value(std::stod(token.text)));
            break;
          case TokenType::kString:
            row.push_back(Value(token.text));
            break;
          case TokenType::kIdentifier:
            if (UpperOf(token.text) == "NULL") {
              row.push_back(Value::Null());
              break;
            }
            return Error("expected literal");
          default:
            return Error("expected literal");
        }
        ++pos_;
        if (AcceptSymbol(",")) continue;
        QA_RETURN_IF_ERROR(ExpectSymbol(")"));
        break;
      }
      stmt.rows.push_back(std::move(row));
      if (!AcceptSymbol(",")) break;
    }
    QA_RETURN_IF_ERROR(End());
    return stmt;
  }

 private:
  static std::string UpperOf(const std::string& word) {
    std::string upper = word;
    std::transform(upper.begin(), upper.end(), upper.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    return upper;
  }

  const Token& Peek() const { return tokens_[pos_]; }

  util::Status Error(const std::string& message) const {
    return util::Status::InvalidArgument(
        message + " at position " + std::to_string(Peek().offset));
  }

  /// Accepts a keyword-or-identifier word matching `expected`.
  util::Status ExpectWord(const char* expected) {
    const Token& token = Peek();
    if ((token.type == TokenType::kKeyword ||
         token.type == TokenType::kIdentifier) &&
        UpperOf(token.text) == expected) {
      ++pos_;
      return util::Status::OK();
    }
    return Error(std::string("expected ") + expected);
  }

  util::Status Word(std::string* out) {
    const Token& token = Peek();
    if (token.type != TokenType::kKeyword &&
        token.type != TokenType::kIdentifier) {
      return Error("expected word");
    }
    *out = UpperOf(token.text);
    ++pos_;
    return util::Status::OK();
  }

  util::Status Identifier(std::string* out) {
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected identifier");
    }
    *out = tokens_[pos_++].text;
    return util::Status::OK();
  }

  bool AcceptSymbol(const char* sym) {
    if (Peek().IsSymbol(sym)) {
      ++pos_;
      return true;
    }
    return false;
  }
  util::Status ExpectSymbol(const char* sym) {
    if (!AcceptSymbol(sym)) {
      return Error(std::string("expected '") + sym + "'");
    }
    return util::Status::OK();
  }
  util::Status End() {
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing input");
    }
    return util::Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

util::StatusOr<SqlStatement> ParseStatement(const std::string& sql) {
  std::string head = UpperPrefix(sql);
  if (head == "SELECT") {
    util::StatusOr<SelectStatement> select = ParseSelect(sql);
    if (!select.ok()) return select.status();
    return SqlStatement(std::move(select).value());
  }
  util::StatusOr<std::vector<Token>> tokens = Tokenize(sql);
  if (!tokens.ok()) return tokens.status();
  DdlParser parser(std::move(tokens).value());
  if (head == "CREATE") {
    util::StatusOr<CreateTableStatement> create = parser.ParseCreate();
    if (!create.ok()) return create.status();
    return SqlStatement(std::move(create).value());
  }
  if (head == "INSERT") {
    util::StatusOr<InsertStatement> insert = parser.ParseInsert();
    if (!insert.ok()) return insert.status();
    return SqlStatement(std::move(insert).value());
  }
  return util::Status::InvalidArgument(
      "expected SELECT, CREATE TABLE or INSERT INTO");
}

util::StatusOr<int64_t> ApplyStatement(Database* db,
                                       const SqlStatement& stmt) {
  if (const auto* create = std::get_if<CreateTableStatement>(&stmt)) {
    QA_RETURN_IF_ERROR(
        db->CreateTable(Table(create->name, Schema(create->columns))));
    return int64_t{0};
  }
  if (const auto* insert = std::get_if<InsertStatement>(&stmt)) {
    const Table* existing = db->GetTable(insert->table);
    if (existing == nullptr) {
      return util::Status::NotFound("no table named " + insert->table);
    }
    // Validate all rows before mutating (all-or-nothing insert).
    Table staged(existing->name(), existing->schema());
    for (const Row& row : insert->rows) {
      QA_RETURN_IF_ERROR(staged.Append(row));
    }
    Table* table = db->MutableTable(insert->table);
    for (const Row& row : staged.rows()) {
      table->AppendUnchecked(row);
    }
    return static_cast<int64_t>(insert->rows.size());
  }
  return util::Status::InvalidArgument(
      "SELECT statements execute via ExecuteStatement, not ApplyStatement");
}

}  // namespace qa::dbms
