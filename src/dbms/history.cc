#include "dbms/history.h"

namespace qa::dbms {

void ExecutionHistory::Record(const std::string& signature,
                              util::VDuration actual) {
  Entry& entry = entries_[signature];
  if (entry.count == 0) {
    entry.ewma = static_cast<double>(actual);
  } else {
    entry.ewma = alpha_ * static_cast<double>(actual) +
                 (1.0 - alpha_) * entry.ewma;
  }
  ++entry.count;
}

std::optional<util::VDuration> ExecutionHistory::Estimate(
    const std::string& signature) const {
  auto it = entries_.find(signature);
  if (it == entries_.end() || it->second.count == 0) return std::nullopt;
  return static_cast<util::VDuration>(it->second.ewma);
}

int64_t ExecutionHistory::ObservationCount(
    const std::string& signature) const {
  auto it = entries_.find(signature);
  return it == entries_.end() ? 0 : it->second.count;
}

}  // namespace qa::dbms
