#ifndef QAMARKET_DBMS_DDL_H_
#define QAMARKET_DBMS_DDL_H_

#include <string>
#include <variant>
#include <vector>

#include "dbms/database.h"
#include "dbms/query_ast.h"
#include "util/status.h"

namespace qa::dbms {

/// CREATE TABLE name (col TYPE [, ...]); types INT, DOUBLE, STRING/TEXT.
struct CreateTableStatement {
  std::string name;
  std::vector<Column> columns;
};

/// INSERT INTO name VALUES (lit, ...) [, (lit, ...)]...
struct InsertStatement {
  std::string table;
  std::vector<Row> rows;
};

/// Any statement the SQL front end understands.
using SqlStatement =
    std::variant<SelectStatement, CreateTableStatement, InsertStatement>;

/// Parses a single SQL statement (SELECT / CREATE TABLE / INSERT).
util::StatusOr<SqlStatement> ParseStatement(const std::string& sql);

/// Applies a DDL/DML statement to `db`. Returns the number of rows
/// inserted (0 for CREATE TABLE).
util::StatusOr<int64_t> ApplyStatement(Database* db,
                                       const SqlStatement& stmt);

}  // namespace qa::dbms

#endif  // QAMARKET_DBMS_DDL_H_
