#ifndef QAMARKET_DBMS_EXPR_H_
#define QAMARKET_DBMS_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "dbms/table.h"
#include "dbms/value.h"

namespace qa::dbms {

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class LogicalOp { kAnd, kOr };

const char* CompareOpName(CompareOp op);

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// An immutable scalar-expression tree evaluated against one row. Column
/// references are positional (resolved against the operator's input schema
/// at plan-build time).
class Expr {
 public:
  enum class Kind { kColumn, kLiteral, kCompare, kLogical };

  static ExprPtr Column(int index);
  static ExprPtr Literal(Value value);
  static ExprPtr Compare(CompareOp op, ExprPtr left, ExprPtr right);
  static ExprPtr And(ExprPtr left, ExprPtr right);
  static ExprPtr Or(ExprPtr left, ExprPtr right);
  /// Conjunction of a predicate list (nullptr when empty).
  static ExprPtr AndAll(const std::vector<ExprPtr>& preds);

  Kind kind() const { return kind_; }
  int column_index() const { return column_index_; }
  const Value& literal() const { return literal_; }
  CompareOp compare_op() const { return compare_op_; }
  LogicalOp logical_op() const { return logical_op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }

  /// Evaluates against `row`; comparisons yield int 0/1, NULL operands
  /// yield NULL (which EvalBool treats as false).
  Value Eval(const Row& row) const;
  bool EvalBool(const Row& row) const;

  /// Crude selectivity estimate used by the planner (equality 0.1, range
  /// 0.3, AND multiplies, OR adds-capped).
  double EstimatedSelectivity() const;

  /// Rewrites column indices through `mapping` (old index -> new index),
  /// used when predicates are pushed through joins/projections.
  ExprPtr RemapColumns(const std::vector<int>& mapping) const;

  std::string ToString(const Schema* schema = nullptr) const;

 private:
  Expr() = default;

  Kind kind_ = Kind::kLiteral;
  int column_index_ = -1;
  Value literal_;
  CompareOp compare_op_ = CompareOp::kEq;
  LogicalOp logical_op_ = LogicalOp::kAnd;
  ExprPtr left_;
  ExprPtr right_;
};

}  // namespace qa::dbms

#endif  // QAMARKET_DBMS_EXPR_H_
