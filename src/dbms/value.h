#ifndef QAMARKET_DBMS_VALUE_H_
#define QAMARKET_DBMS_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace qa::dbms {

/// Column types supported by minidb.
enum class ValueType { kNull, kInt, kDouble, kString };

const char* ValueTypeName(ValueType type);

/// A single SQL value: NULL, 64-bit integer, double or string.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}

  static Value Null() { return Value(); }

  ValueType type() const;
  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }

  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const;  // promotes ints
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// SQL-style three-valued comparison is simplified to: NULL sorts first
  /// and equals only NULL; numeric types compare by value (int 3 == double
  /// 3.0); strings compare lexicographically. Cross-kind comparisons
  /// (string vs number) order by type tag.
  friend bool operator==(const Value& a, const Value& b);
  friend bool operator<(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator<=(const Value& a, const Value& b) {
    return a < b || a == b;
  }
  friend bool operator>(const Value& a, const Value& b) { return !(a <= b); }
  friend bool operator>=(const Value& a, const Value& b) { return !(a < b); }

  size_t Hash() const;
  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

/// One tuple.
using Row = std::vector<Value>;

/// Hash of a row prefix (used by hash join / group by on key columns).
size_t HashKey(const Row& row, const std::vector<int>& key_columns);

}  // namespace qa::dbms

#endif  // QAMARKET_DBMS_VALUE_H_
