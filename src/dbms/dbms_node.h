#ifndef QAMARKET_DBMS_DBMS_NODE_H_
#define QAMARKET_DBMS_DBMS_NODE_H_

#include <string>

#include "catalog/catalog.h"
#include "dbms/buffer_pool.h"
#include "dbms/database.h"
#include "dbms/engine.h"
#include "dbms/history.h"
#include "query/node_profile.h"
#include "util/status.h"
#include "util/vtime.h"

namespace qa::dbms {

/// Hardware/engine knobs of one federation member (§5.2: 1.3-3.06 GHz PCs,
/// 1 GB RAM, one behind a 54 Mb wireless link).
struct DbmsNodeConfig {
  query::NodeProfile hw;
  int64_t buffer_bytes = 64LL << 20;
  /// Multiplier emulating the paper's 1 GB tablespace with our (smaller)
  /// in-memory tables: every simulated I/O byte and CPU tuple counts
  /// `data_scale` times.
  double data_scale = 1.0;
  /// Base CPU cost of evaluating one EXPLAIN PLAN (divided by cpu_ghz; the
  /// paper's slowest PC took up to 3 s per EXPLAIN).
  util::VDuration explain_base = 400 * util::kMillisecond;
  /// One-way network latency from the coordinator to this node.
  util::VDuration link_latency = 1 * util::kMillisecond;
  PlannerOptions planner;
  /// Cycles charged per abstract CPU tuple unit.
  double cycles_per_tuple = 2000.0;
};

/// A remote node's reply to an estimate request.
struct EstimateReply {
  /// Estimated execution time (history-corrected when available).
  util::VDuration est_exec = 0;
  /// Time the node needed to produce the estimate (EXPLAIN evaluation).
  util::VDuration explain_time = 0;
  std::string signature;
  bool from_history = false;
};

/// The outcome of actually executing a query on a node.
struct ExecutionOutcome {
  int64_t result_rows = 0;
  /// Simulated wall-clock execution time on this node's hardware given the
  /// current buffer-pool contents.
  util::VDuration duration = 0;
  std::string signature;
};

/// One autonomous DBMS node of the §5.2 deployment: a minidb database, a
/// buffer pool, an execution history, and a timing model translating plan
/// statistics into this node's virtual execution time.
class DbmsNode {
 public:
  DbmsNode(catalog::NodeId id, Database db, DbmsNodeConfig config);

  catalog::NodeId id() const { return id_; }
  const Database& db() const { return db_; }
  const DbmsNodeConfig& config() const { return config_; }
  const BufferPool& buffer_pool() const { return buffer_pool_; }
  const ExecutionHistory& history() const { return history_; }

  bool CanEvaluate(const SelectStatement& stmt) const;

  /// EXPLAIN-based estimate. Uses the execution history when this plan
  /// shape was seen before (the paper's fix for buffer-blind estimates);
  /// otherwise converts the optimizer's ResourceEstimate into time assuming
  /// all I/O is cold.
  util::StatusOr<EstimateReply> EstimateQuery(const SelectStatement& stmt);

  /// Executes for real: runs the plan over the local tables, charges actual
  /// I/O against the buffer pool, updates the history, and returns the
  /// simulated duration.
  util::StatusOr<ExecutionOutcome> ExecuteQuery(const SelectStatement& stmt);

  /// Buffer-blind conversion of optimizer estimates into this node's time.
  util::VDuration EstimateToDuration(const ResourceEstimate& estimate) const;

  /// Clears buffer pool and execution history (fresh experiment run).
  void ResetState();

  /// Adjusts the emulated dataset volume (used by calibration).
  void set_data_scale(double scale) { config_.data_scale = scale; }

 private:
  util::VDuration CpuTime(double tuples) const;
  util::VDuration IoTime(double bytes) const;

  catalog::NodeId id_;
  Database db_;
  DbmsNodeConfig config_;
  BufferPool buffer_pool_;
  ExecutionHistory history_;
};

}  // namespace qa::dbms

#endif  // QAMARKET_DBMS_DBMS_NODE_H_
