#ifndef QAMARKET_DBMS_DATASET_H_
#define QAMARKET_DBMS_DATASET_H_

#include <map>
#include <string>
#include <vector>

#include "dbms/database.h"
#include "dbms/query_ast.h"
#include "util/rng.h"

namespace qa::dbms {

/// Shape of the §5.2 dataset: 20 base tables (1 GB tablespace in the paper;
/// we keep the row counts small and emulate the volume via
/// DbmsNodeConfig::data_scale), 80 select-project views, each table/view
/// mirrored on 2-4 of the 5 nodes.
struct DatasetConfig {
  int num_nodes = 5;
  int num_tables = 20;
  int num_views = 80;
  int min_rows = 500;
  int max_rows = 3000;
  int min_copies = 2;
  int max_copies = 4;
  /// Star-query templates over the dataset.
  int num_templates = 40;
  int min_dims = 2;   // joins per star query (dimensions joined to a fact)
  int max_dims = 4;
  /// Number of distinct category values (selection constants range).
  int num_categories = 10;
};

/// The built multi-node dataset plus the workload templates over it.
struct Fig7Dataset {
  /// One database per node with its local copies of tables and views.
  std::vector<Database> node_dbs;
  /// relation name -> nodes holding a copy.
  std::map<std::string, std::vector<int>> placement;
  /// Star-query templates; selection constants are placeholders that
  /// InstantiateTemplate re-draws per query instance.
  std::vector<SelectStatement> templates;
  /// Per template: the nodes holding every referenced relation.
  std::vector<std::vector<int>> template_nodes;
};

/// Every table has the same six columns: id INT, fk0..fk2 INT (uniform keys
/// joining to other tables' ids), cat INT (selection column in
/// [0, num_categories)), val DOUBLE.
Schema Fig7TableSchema();

/// Builds tables, views, placement, and star-query templates. Templates are
/// anchored at a node (fact + dimensions drawn from that node's local
/// relations) so every template has at least one eligible evaluator.
Fig7Dataset BuildFig7Dataset(const DatasetConfig& config, util::Rng& rng);

/// A fresh instance of template `t`: same tables/joins/shape, freshly drawn
/// selection constants (queries of a class differ only in constants, §2.1).
SelectStatement InstantiateTemplate(const Fig7Dataset& dataset, int t,
                                    const DatasetConfig& config,
                                    util::Rng& rng);

}  // namespace qa::dbms

#endif  // QAMARKET_DBMS_DATASET_H_
