#include "dbms/table.h"

namespace qa::dbms {

int Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Column> columns = left.columns();
  columns.insert(columns.end(), right.columns().begin(),
                 right.columns().end());
  return Schema(std::move(columns));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i != 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += ValueTypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

util::Status Table::Append(Row row) {
  if (static_cast<int>(row.size()) != schema_.num_columns()) {
    return util::Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.num_columns()) + " for table " + name_);
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    ValueType expected = schema_.column(static_cast<int>(i)).type;
    ValueType actual = row[i].type();
    bool numeric_ok = (expected == ValueType::kDouble &&
                       actual == ValueType::kInt);
    if (actual != expected && !numeric_ok) {
      return util::Status::InvalidArgument(
          "type mismatch in column " + schema_.column(static_cast<int>(i)).name +
          ": expected " + ValueTypeName(expected) + ", got " +
          ValueTypeName(actual));
    }
  }
  rows_.push_back(std::move(row));
  return util::Status::OK();
}

int64_t Table::EstimatedBytes() const {
  int64_t bytes = 0;
  for (const Row& row : rows_) {
    for (const Value& v : row) {
      bytes += 16;
      if (v.type() == ValueType::kString) {
        bytes += static_cast<int64_t>(v.AsString().size());
      }
    }
  }
  return bytes;
}

}  // namespace qa::dbms
