#ifndef QAMARKET_DBMS_PARSER_H_
#define QAMARKET_DBMS_PARSER_H_

#include <string>

#include "dbms/query_ast.h"
#include "util/status.h"

namespace qa::dbms {

/// Parses the select-join-project-group-sort dialect minidb supports:
///
///   SELECT t.col | agg(t.col) | COUNT(*) [, ...] | *
///   FROM table [JOIN table ON a.x = b.y]...
///   [WHERE t.col <op> literal [AND ...]]
///   [GROUP BY t.col [, ...]]
///   [ORDER BY t.col [, ...]]
///
/// with <op> one of = != <> < <= > >= and literals being integers, floats
/// or 'strings'. Column references may omit the table qualifier when the
/// statement reads a single table; with joins they must be qualified.
/// Keywords are case-insensitive. Returns InvalidArgument with a position
/// on syntax errors.
util::StatusOr<SelectStatement> ParseSelect(const std::string& sql);

}  // namespace qa::dbms

#endif  // QAMARKET_DBMS_PARSER_H_
