#include "dbms/engine.h"

namespace qa::dbms {

util::StatusOr<QueryResult> ExecuteStatement(const Database& db,
                                             const SelectStatement& stmt,
                                             PlannerOptions options) {
  Planner planner(&db, options);
  util::StatusOr<PlannedQuery> planned = planner.Plan(stmt);
  if (!planned.ok()) return planned.status();

  QueryResult result;
  result.signature = planned->signature;
  result.estimate = planned->estimate;
  result.table = planned->plan->Execute(db, &result.stats);
  return result;
}

}  // namespace qa::dbms
