#include "dbms/expr.h"

#include <algorithm>
#include <cassert>

namespace qa::dbms {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

ExprPtr Expr::Column(int index) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kColumn;
  e->column_index_ = index;
  return e;
}

ExprPtr Expr::Literal(Value value) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kLiteral;
  e->literal_ = std::move(value);
  return e;
}

ExprPtr Expr::Compare(CompareOp op, ExprPtr left, ExprPtr right) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kCompare;
  e->compare_op_ = op;
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return e;
}

ExprPtr Expr::And(ExprPtr left, ExprPtr right) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kLogical;
  e->logical_op_ = LogicalOp::kAnd;
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return e;
}

ExprPtr Expr::Or(ExprPtr left, ExprPtr right) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kLogical;
  e->logical_op_ = LogicalOp::kOr;
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return e;
}

ExprPtr Expr::AndAll(const std::vector<ExprPtr>& preds) {
  ExprPtr acc;
  for (const ExprPtr& p : preds) {
    if (!p) continue;
    acc = acc ? And(acc, p) : p;
  }
  return acc;
}

Value Expr::Eval(const Row& row) const {
  switch (kind_) {
    case Kind::kColumn:
      return row[static_cast<size_t>(column_index_)];
    case Kind::kLiteral:
      return literal_;
    case Kind::kCompare: {
      Value l = left_->Eval(row);
      Value r = right_->Eval(row);
      if (l.is_null() || r.is_null()) return Value::Null();
      bool result = false;
      switch (compare_op_) {
        case CompareOp::kEq:
          result = l == r;
          break;
        case CompareOp::kNe:
          result = l != r;
          break;
        case CompareOp::kLt:
          result = l < r;
          break;
        case CompareOp::kLe:
          result = l <= r;
          break;
        case CompareOp::kGt:
          result = l > r;
          break;
        case CompareOp::kGe:
          result = l >= r;
          break;
      }
      return Value(static_cast<int64_t>(result ? 1 : 0));
    }
    case Kind::kLogical: {
      bool l = left_->EvalBool(row);
      if (logical_op_ == LogicalOp::kAnd) {
        return Value(static_cast<int64_t>(l && right_->EvalBool(row)));
      }
      return Value(static_cast<int64_t>(l || right_->EvalBool(row)));
    }
  }
  return Value::Null();
}

bool Expr::EvalBool(const Row& row) const {
  Value v = Eval(row);
  if (v.is_null()) return false;
  if (v.type() == ValueType::kInt) return v.AsInt() != 0;
  // SQL truthiness is exact: only a stored 0.0 is false, not "near zero".
  // qa-lint: allow(QA-NUM-001)
  if (v.type() == ValueType::kDouble) return v.AsDouble() != 0.0;
  return true;
}

double Expr::EstimatedSelectivity() const {
  switch (kind_) {
    case Kind::kColumn:
    case Kind::kLiteral:
      return 1.0;
    case Kind::kCompare:
      return compare_op_ == CompareOp::kEq ? 0.1 : 0.3;
    case Kind::kLogical: {
      double left_sel = left_->EstimatedSelectivity();
      double right_sel = right_->EstimatedSelectivity();
      if (logical_op_ == LogicalOp::kAnd) return left_sel * right_sel;
      return std::min(1.0, left_sel + right_sel);
    }
  }
  return 1.0;
}

ExprPtr Expr::RemapColumns(const std::vector<int>& mapping) const {
  switch (kind_) {
    case Kind::kColumn: {
      assert(column_index_ >= 0 &&
             column_index_ < static_cast<int>(mapping.size()));
      return Column(mapping[static_cast<size_t>(column_index_)]);
    }
    case Kind::kLiteral:
      return Literal(literal_);
    case Kind::kCompare:
      return Compare(compare_op_, left_->RemapColumns(mapping),
                     right_->RemapColumns(mapping));
    case Kind::kLogical: {
      ExprPtr l = left_->RemapColumns(mapping);
      ExprPtr r = right_->RemapColumns(mapping);
      return logical_op_ == LogicalOp::kAnd ? And(l, r) : Or(l, r);
    }
  }
  return nullptr;
}

std::string Expr::ToString(const Schema* schema) const {
  switch (kind_) {
    case Kind::kColumn:
      if (schema != nullptr && column_index_ < schema->num_columns()) {
        return schema->column(column_index_).name;
      }
      return "$" + std::to_string(column_index_);
    case Kind::kLiteral:
      return literal_.ToString();
    case Kind::kCompare:
      return "(" + left_->ToString(schema) + " " +
             CompareOpName(compare_op_) + " " + right_->ToString(schema) +
             ")";
    case Kind::kLogical:
      return "(" + left_->ToString(schema) +
             (logical_op_ == LogicalOp::kAnd ? " AND " : " OR ") +
             right_->ToString(schema) + ")";
  }
  return "?";
}

}  // namespace qa::dbms
