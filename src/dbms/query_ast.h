#ifndef QAMARKET_DBMS_QUERY_AST_H_
#define QAMARKET_DBMS_QUERY_AST_H_

#include <string>
#include <vector>

#include "dbms/value.h"

namespace qa::dbms {

/// A table or view referenced in the FROM clause.
struct TableRef {
  std::string name;
};

/// Equi-join predicate: tables[left_table].left_column =
/// tables[right_table].right_column.
struct JoinPredicate {
  int left_table = 0;
  std::string left_column;
  int right_table = 0;
  std::string right_column;
};

/// Single-table selection: tables[table].column <op> constant.
struct SelectionPredicate {
  int table = 0;
  std::string column;
  /// 0 = '=', 1 = '<>', 2 = '<', 3 = '<=', 4 = '>', 5 = '>=' — kept as an
  /// int here to avoid a dependency cycle with expr.h; the planner maps it
  /// onto CompareOp.
  int op = 0;
  Value constant;
};

/// Reference to an output column of a FROM-clause table.
struct ColumnRef {
  int table = 0;
  std::string column;
};

/// ORDER BY item: a column plus direction.
struct OrderItem {
  ColumnRef column;
  bool descending = false;
};

/// Aggregate function over a column (kCount ignores the column).
struct Aggregate {
  enum class Fn { kCount, kSum, kMin, kMax, kAvg };
  Fn fn = Fn::kCount;
  ColumnRef arg;
};

/// A select-join-project-group-sort statement — the workload family used
/// throughout the paper (§2.1, §5.2). There is deliberately no SQL text
/// parser: the experiments generate statements programmatically, so the
/// structured form *is* the interface (see StatementBuilder for
/// convenience).
struct SelectStatement {
  std::vector<TableRef> tables;
  std::vector<JoinPredicate> joins;
  std::vector<SelectionPredicate> filters;
  /// Empty means SELECT * over the joined row.
  std::vector<ColumnRef> projections;
  std::vector<ColumnRef> group_by;
  std::vector<Aggregate> aggregates;
  std::vector<OrderItem> order_by;
  /// Maximum number of output rows; negative = no limit.
  int64_t limit = -1;

  bool has_grouping() const {
    return !group_by.empty() || !aggregates.empty();
  }
};

/// Fluent helper for building statements in tests/examples:
///   auto stmt = StatementBuilder()
///       .From("orders").From("customers")
///       .Join(0, "customer_id", 1, "id")
///       .Where(0, "amount", 4, Value(int64_t{100}))   // amount > 100
///       .Select(1, "name").OrderBy(1, "name")
///       .Build();
class StatementBuilder {
 public:
  StatementBuilder& From(std::string table) {
    stmt_.tables.push_back({std::move(table)});
    return *this;
  }
  StatementBuilder& Join(int lt, std::string lc, int rt, std::string rc) {
    stmt_.joins.push_back({lt, std::move(lc), rt, std::move(rc)});
    return *this;
  }
  StatementBuilder& Where(int table, std::string column, int op,
                          Value constant) {
    stmt_.filters.push_back(
        {table, std::move(column), op, std::move(constant)});
    return *this;
  }
  StatementBuilder& Select(int table, std::string column) {
    stmt_.projections.push_back({table, std::move(column)});
    return *this;
  }
  StatementBuilder& GroupBy(int table, std::string column) {
    stmt_.group_by.push_back({table, std::move(column)});
    return *this;
  }
  StatementBuilder& Agg(Aggregate::Fn fn, int table, std::string column) {
    stmt_.aggregates.push_back({fn, {table, std::move(column)}});
    return *this;
  }
  StatementBuilder& OrderBy(int table, std::string column,
                            bool descending = false) {
    stmt_.order_by.push_back({{table, std::move(column)}, descending});
    return *this;
  }
  StatementBuilder& Limit(int64_t n) {
    stmt_.limit = n;
    return *this;
  }
  SelectStatement Build() { return stmt_; }

 private:
  SelectStatement stmt_;
};

}  // namespace qa::dbms

#endif  // QAMARKET_DBMS_QUERY_AST_H_
