#ifndef QAMARKET_DBMS_HISTORY_H_
#define QAMARKET_DBMS_HISTORY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "util/vtime.h"

namespace qa::dbms {

/// Plan-keyed execution history: "we used past execution information
/// concerning queries with the same plan to estimate the execution time of
/// the new query" (§5.2). Estimates are an exponentially weighted moving
/// average of observed durations per plan signature.
class ExecutionHistory {
 public:
  /// `alpha` is the EWMA weight of the newest observation.
  explicit ExecutionHistory(double alpha = 0.3) : alpha_(alpha) {}

  void Record(const std::string& signature, util::VDuration actual);

  /// History-based estimate, or nullopt when the plan was never seen.
  std::optional<util::VDuration> Estimate(const std::string& signature) const;

  int64_t ObservationCount(const std::string& signature) const;
  size_t num_signatures() const { return entries_.size(); }

 private:
  struct Entry {
    double ewma = 0.0;
    int64_t count = 0;
  };
  double alpha_;
  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace qa::dbms

#endif  // QAMARKET_DBMS_HISTORY_H_
