#ifndef QAMARKET_DBMS_DATABASE_H_
#define QAMARKET_DBMS_DATABASE_H_

#include <map>
#include <string>
#include <vector>

#include "dbms/query_ast.h"
#include "dbms/table.h"
#include "util/status.h"

namespace qa::dbms {

/// A select-project view over a single base table (the §5.2 dataset: "80
/// select-project views over these tables").
struct ViewDef {
  std::string name;
  std::string base_table;
  /// Column names of the base table the view exposes (empty = all).
  std::vector<std::string> columns;
  /// Simple column-op-constant filters, op encoded as in
  /// SelectionPredicate::op.
  struct Filter {
    std::string column;
    int op = 0;
    Value constant;
  };
  std::vector<Filter> filters;
};

/// One node's local database: base tables plus select-project views.
class Database {
 public:
  Database() = default;
  /// Databases own sizeable tables; keep them move-only to avoid silent
  /// deep copies.
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  util::Status CreateTable(Table table);
  util::Status CreateView(ViewDef view);

  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }
  bool HasView(const std::string& name) const {
    return views_.count(name) > 0;
  }
  /// True if `name` resolves to either a table or a view.
  bool HasRelation(const std::string& name) const {
    return HasTable(name) || HasView(name);
  }

  /// nullptr when absent. Views are not returned here.
  const Table* GetTable(const std::string& name) const;
  /// Mutable access for DML (INSERT); nullptr when absent.
  Table* MutableTable(const std::string& name);
  const ViewDef* GetView(const std::string& name) const;

  /// The schema `name` exposes (view schemas are the projected columns).
  /// NotFound when the relation does not exist.
  util::StatusOr<Schema> RelationSchema(const std::string& name) const;

  std::vector<std::string> TableNames() const;
  std::vector<std::string> ViewNames() const;

  int64_t TotalBytes() const;

 private:
  std::map<std::string, Table> tables_;
  std::map<std::string, ViewDef> views_;
};

}  // namespace qa::dbms

#endif  // QAMARKET_DBMS_DATABASE_H_
