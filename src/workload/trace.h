#ifndef QAMARKET_WORKLOAD_TRACE_H_
#define QAMARKET_WORKLOAD_TRACE_H_

#include <iosfwd>
#include <vector>

#include "catalog/catalog.h"
#include "util/status.h"
#include "query/query.h"
#include "util/vtime.h"

namespace qa::workload {

/// One query arrival in a workload trace.
struct Arrival {
  util::VTime time = 0;
  query::QueryClassId class_id = 0;
  /// Node at which the query is posed (the client/buyer).
  catalog::NodeId origin = 0;
  /// Per-instance execution-cost jitter (see query::Query::cost_jitter).
  double cost_jitter = 1.0;
};

/// A time-ordered sequence of arrivals.
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<Arrival> arrivals);

  void Add(Arrival arrival) { arrivals_.push_back(arrival); }
  /// Sorts by time (stable), which generators call once at the end.
  void SortByTime();

  size_t size() const { return arrivals_.size(); }
  bool empty() const { return arrivals_.empty(); }
  const Arrival& operator[](size_t i) const { return arrivals_[i]; }
  const std::vector<Arrival>& arrivals() const { return arrivals_; }

  util::VTime LastArrivalTime() const;

  /// Arrival counts of class `class_id` per `bucket`-wide window over
  /// [0, horizon) — the y-axis of the paper's Fig. 3 / Fig. 5c.
  std::vector<int> ArrivalCounts(query::QueryClassId class_id,
                                 util::VDuration bucket,
                                 util::VTime horizon) const;

  /// Merges two traces, keeping time order.
  static Trace Merge(const Trace& a, const Trace& b);

  /// Writes the trace as CSV (time_us,class,origin,cost_jitter) so an
  /// experiment's exact workload can be archived and replayed.
  void WriteCsv(std::ostream& out) const;

  /// Reads a trace previously written by WriteCsv.
  static util::StatusOr<Trace> ReadCsv(std::istream& in);

 private:
  std::vector<Arrival> arrivals_;
};

}  // namespace qa::workload

#endif  // QAMARKET_WORKLOAD_TRACE_H_
