#include "workload/uniform.h"

#include <cassert>

namespace qa::workload {

namespace {

Arrival MakeArrival(util::VTime t,
                    const std::vector<query::QueryClassId>& classes,
                    int num_origin_nodes, double cost_jitter,
                    util::Rng& rng) {
  Arrival arrival;
  arrival.time = t;
  arrival.class_id = classes[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(classes.size()) - 1))];
  arrival.origin =
      static_cast<catalog::NodeId>(rng.UniformInt(0, num_origin_nodes - 1));
  arrival.cost_jitter =
      cost_jitter > 0.0
          ? rng.UniformReal(1.0 - cost_jitter, 1.0 + cost_jitter)
          : 1.0;
  return arrival;
}

}  // namespace

Trace GenerateUniformWorkload(const UniformWorkloadConfig& config,
                              util::Rng& rng) {
  assert(!config.classes.empty());
  Trace trace;
  util::VTime t = 0;
  for (int i = 0; i < config.num_queries; ++i) {
    t += rng.UniformInt(0, 2 * config.mean_interarrival);
    trace.Add(MakeArrival(t, config.classes, config.num_origin_nodes,
                          config.cost_jitter, rng));
  }
  return trace;
}

Trace GeneratePoissonWorkload(const PoissonWorkloadConfig& config,
                              util::Rng& rng) {
  assert(!config.classes.empty());
  Trace trace;
  double t = 0.0;
  for (int i = 0; i < config.num_queries; ++i) {
    t += rng.Exponential(static_cast<double>(config.mean_interarrival));
    trace.Add(MakeArrival(static_cast<util::VTime>(t), config.classes,
                          config.num_origin_nodes, config.cost_jitter, rng));
  }
  return trace;
}

}  // namespace qa::workload
