#ifndef QAMARKET_WORKLOAD_UNIFORM_H_
#define QAMARKET_WORKLOAD_UNIFORM_H_

#include <vector>

#include "util/rng.h"
#include "util/vtime.h"
#include "workload/trace.h"

namespace qa::workload {

/// Uniform-inter-arrival workload, used by the real-deployment experiment
/// (§5.2): 300 queries with uniformly distributed inter-arrival times of a
/// given average, classes drawn uniformly from a given set.
struct UniformWorkloadConfig {
  int num_queries = 300;
  /// Inter-arrival time ~ U(0, 2*mean) so its average is `mean`.
  util::VDuration mean_interarrival = 300 * util::kMillisecond;
  std::vector<query::QueryClassId> classes = {0};
  int num_origin_nodes = 1;
  double cost_jitter = 0.05;
};

Trace GenerateUniformWorkload(const UniformWorkloadConfig& config,
                              util::Rng& rng);

/// Poisson-process workload (exponential gaps) over a fixed class mix;
/// used by tests and the ablation benches as a memoryless contrast to the
/// sinusoid and Zipf generators.
struct PoissonWorkloadConfig {
  int num_queries = 1000;
  util::VDuration mean_interarrival = 100 * util::kMillisecond;
  std::vector<query::QueryClassId> classes = {0};
  int num_origin_nodes = 1;
  double cost_jitter = 0.05;
};

Trace GeneratePoissonWorkload(const PoissonWorkloadConfig& config,
                              util::Rng& rng);

}  // namespace qa::workload

#endif  // QAMARKET_WORKLOAD_UNIFORM_H_
