#include "workload/zipf_workload.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace qa::workload {

namespace {

/// Zipf pmf over ranks 1..n with exponent alpha.
std::vector<double> ZipfPmf(int n, double alpha) {
  std::vector<double> pmf(static_cast<size_t>(n));
  double sum = 0.0;
  for (int r = 1; r <= n; ++r) {
    pmf[static_cast<size_t>(r - 1)] =
        1.0 / std::pow(static_cast<double>(r), alpha);
    sum += pmf[static_cast<size_t>(r - 1)];
  }
  for (double& p : pmf) p /= sum;
  return pmf;
}

/// E[min(u * R, cap)] for R ~ Zipf(alpha) over 1..n.
double ExpectedGap(double u, double cap, const std::vector<double>& pmf) {
  double e = 0.0;
  for (size_t r = 0; r < pmf.size(); ++r) {
    e += pmf[r] * std::min(u * static_cast<double>(r + 1), cap);
  }
  return e;
}

}  // namespace

double SolveZipfUnit(util::VDuration target_mean, util::VDuration cap, int n,
                     double alpha) {
  assert(n >= 1);
  std::vector<double> pmf = ZipfPmf(n, alpha);
  double cap_d = static_cast<double>(cap);
  double target = std::min(static_cast<double>(target_mean), cap_d * 0.999);
  // E is monotone increasing in u from 0 to cap; bisect.
  double lo = 0.0;
  double hi = cap_d;  // u = cap makes every gap equal to cap
  for (int iter = 0; iter < 200; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (ExpectedGap(mid, cap_d, pmf) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

Trace GenerateZipfWorkload(const ZipfWorkloadConfig& config, util::Rng& rng) {
  double unit = SolveZipfUnit(config.mean_interarrival,
                              config.max_interarrival, config.zipf_support,
                              config.zipf_alpha);
  // Horizon long enough that the merged stream comfortably exceeds
  // num_queries arrivals: num_queries/num_classes gaps per class.
  double per_class_span =
      static_cast<double>(config.mean_interarrival) *
      (static_cast<double>(config.num_queries) / config.num_classes + 2.0);

  Trace trace;
  for (int c = 0; c < config.num_classes; ++c) {
    // Desynchronize the streams with a random initial offset.
    double t = rng.UniformReal(
        0.0, static_cast<double>(config.mean_interarrival));
    while (t < per_class_span) {
      Arrival arrival;
      arrival.time = static_cast<util::VTime>(t);
      arrival.class_id = static_cast<query::QueryClassId>(c);
      arrival.origin = static_cast<catalog::NodeId>(
          rng.UniformInt(0, config.num_origin_nodes - 1));
      arrival.cost_jitter =
          config.cost_jitter > 0.0
              ? rng.UniformReal(1.0 - config.cost_jitter,
                                1.0 + config.cost_jitter)
              : 1.0;
      trace.Add(arrival);
      double gap = std::min(
          unit * static_cast<double>(
                     rng.Zipf(config.zipf_support, config.zipf_alpha)),
          static_cast<double>(config.max_interarrival));
      t += gap;
    }
  }
  trace.SortByTime();
  std::vector<Arrival> arrivals = trace.arrivals();
  if (arrivals.size() > static_cast<size_t>(config.num_queries)) {
    arrivals.resize(static_cast<size_t>(config.num_queries));
  }
  return Trace(std::move(arrivals));
}

}  // namespace qa::workload
