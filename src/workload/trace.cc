#include "workload/trace.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

namespace qa::workload {

Trace::Trace(std::vector<Arrival> arrivals) : arrivals_(std::move(arrivals)) {
  SortByTime();
}

void Trace::SortByTime() {
  std::stable_sort(
      arrivals_.begin(), arrivals_.end(),
      [](const Arrival& a, const Arrival& b) { return a.time < b.time; });
}

util::VTime Trace::LastArrivalTime() const {
  util::VTime last = 0;
  for (const Arrival& a : arrivals_) last = std::max(last, a.time);
  return last;
}

std::vector<int> Trace::ArrivalCounts(query::QueryClassId class_id,
                                      util::VDuration bucket,
                                      util::VTime horizon) const {
  size_t n = bucket > 0 ? static_cast<size_t>((horizon + bucket - 1) / bucket)
                        : 0;
  std::vector<int> counts(n, 0);
  for (const Arrival& a : arrivals_) {
    if (a.class_id != class_id) continue;
    if (a.time < 0 || a.time >= horizon) continue;
    ++counts[static_cast<size_t>(a.time / bucket)];
  }
  return counts;
}

void Trace::WriteCsv(std::ostream& out) const {
  out << "time_us,class,origin,cost_jitter\n";
  for (const Arrival& a : arrivals_) {
    out << a.time << ',' << a.class_id << ',' << a.origin << ','
        << a.cost_jitter << '\n';
  }
}

util::StatusOr<Trace> Trace::ReadCsv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) ||
      line.rfind("time_us,", 0) != 0) {
    return util::Status::InvalidArgument("missing trace CSV header");
  }
  Trace trace;
  int line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream fields(line);
    Arrival a;
    char c1 = 0;
    char c2 = 0;
    char c3 = 0;
    if (!(fields >> a.time >> c1 >> a.class_id >> c2 >> a.origin >> c3 >>
          a.cost_jitter) ||
        c1 != ',' || c2 != ',' || c3 != ',') {
      return util::Status::InvalidArgument(
          "malformed trace CSV at line " + std::to_string(line_no));
    }
    trace.Add(a);
  }
  trace.SortByTime();
  return trace;
}

Trace Trace::Merge(const Trace& a, const Trace& b) {
  std::vector<Arrival> merged;
  merged.reserve(a.size() + b.size());
  merged.insert(merged.end(), a.arrivals().begin(), a.arrivals().end());
  merged.insert(merged.end(), b.arrivals().begin(), b.arrivals().end());
  Trace result(std::move(merged));
  return result;
}

}  // namespace qa::workload
