#ifndef QAMARKET_WORKLOAD_SINUSOID_H_
#define QAMARKET_WORKLOAD_SINUSOID_H_

#include "query/query.h"
#include "util/rng.h"
#include "util/vtime.h"
#include "workload/trace.h"

namespace qa::workload {

/// The two-class sinusoid workload of §5.1 (Fig. 3): the arrival rate of
/// each class follows a raised sinusoid,
///
///   rate(t) = peak/2 * (1 + sin(2*pi*f*t + phase)),
///
/// Q2 lags Q1 by 900 degrees and peaks at half Q1's rate.
struct SinusoidConfig {
  double frequency_hz = 0.05;
  /// Peak arrival rate of Q1 in queries/second; Q2 peaks at half of it.
  double q1_peak_rate = 20.0;
  /// Phase difference of Q2 relative to Q1, in degrees (paper: 900).
  double q2_phase_degrees = 900.0;
  util::VDuration duration = 0;
  query::QueryClassId q1_class = 0;
  query::QueryClassId q2_class = 1;
  int num_origin_nodes = 1;
  /// Execution-cost jitter half-width per query instance (0.05 => +/-5%).
  double cost_jitter = 0.05;
};

/// Generates arrivals for one class whose instantaneous rate (queries per
/// second) follows rate(t) = peak/2 * (1 + sin(2*pi*f*t + phase_radians)).
/// Arrivals are produced deterministically by integrating the rate and
/// emitting a query whenever the integral crosses an integer; only origins
/// and jitter draw from `rng`.
Trace GenerateSinusoidClass(query::QueryClassId class_id, double peak_rate,
                            double frequency_hz, double phase_degrees,
                            util::VDuration duration, int num_origin_nodes,
                            double cost_jitter, util::Rng& rng);

/// The full two-class workload of Fig. 3.
Trace GenerateSinusoidWorkload(const SinusoidConfig& config, util::Rng& rng);

/// Mean aggregate arrival rate (queries/second) of the two-class workload,
/// in closed form: (q1_peak + q2_peak)/2 averaged over full periods.
double SinusoidMeanRate(const SinusoidConfig& config);

}  // namespace qa::workload

#endif  // QAMARKET_WORKLOAD_SINUSOID_H_
