#include "workload/sinusoid.h"

#include <cmath>

namespace qa::workload {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

Trace GenerateSinusoidClass(query::QueryClassId class_id, double peak_rate,
                            double frequency_hz, double phase_degrees,
                            util::VDuration duration, int num_origin_nodes,
                            double cost_jitter, util::Rng& rng) {
  Trace trace;
  if (duration <= 0 || peak_rate <= 0.0) return trace;
  double phase = phase_degrees * kPi / 180.0;
  double omega = 2.0 * kPi * frequency_hz;

  // Integrate rate(t) over 1 ms steps; emit an arrival each time the
  // accumulated mass crosses the next integer.
  double mass = 0.0;
  double next = 1.0;
  const util::VDuration step = util::kMillisecond;
  for (util::VTime t = 0; t < duration; t += step) {
    double seconds = util::ToSeconds(t);
    double rate =
        0.5 * peak_rate * (1.0 + std::sin(omega * seconds + phase));
    mass += rate * util::ToSeconds(step);
    while (mass >= next) {
      Arrival arrival;
      arrival.time = t;
      arrival.class_id = class_id;
      arrival.origin = static_cast<catalog::NodeId>(
          rng.UniformInt(0, num_origin_nodes - 1));
      arrival.cost_jitter =
          cost_jitter > 0.0
              ? rng.UniformReal(1.0 - cost_jitter, 1.0 + cost_jitter)
              : 1.0;
      trace.Add(arrival);
      next += 1.0;
    }
  }
  return trace;
}

Trace GenerateSinusoidWorkload(const SinusoidConfig& config, util::Rng& rng) {
  Trace q1 = GenerateSinusoidClass(config.q1_class, config.q1_peak_rate,
                                   config.frequency_hz, 0.0, config.duration,
                                   config.num_origin_nodes,
                                   config.cost_jitter, rng);
  Trace q2 = GenerateSinusoidClass(
      config.q2_class, config.q1_peak_rate / 2.0, config.frequency_hz,
      config.q2_phase_degrees, config.duration, config.num_origin_nodes,
      config.cost_jitter, rng);
  return Trace::Merge(q1, q2);
}

double SinusoidMeanRate(const SinusoidConfig& config) {
  // Each raised sinusoid averages to half its peak over full periods.
  return 0.5 * config.q1_peak_rate + 0.5 * (config.q1_peak_rate / 2.0);
}

}  // namespace qa::workload
