#ifndef QAMARKET_WORKLOAD_ZIPF_WORKLOAD_H_
#define QAMARKET_WORKLOAD_ZIPF_WORKLOAD_H_

#include "util/rng.h"
#include "util/vtime.h"
#include "workload/trace.h"

namespace qa::workload {

/// The heterogeneous Zipf workload of the second simulation study (§5.1,
/// Fig. 6): 10,000 queries over 100 query classes; per-class inter-arrival
/// times are Zipf(a = 1)-distributed, capped at 30,000 ms.
struct ZipfWorkloadConfig {
  int num_queries = 10000;
  int num_classes = 100;
  /// Target mean inter-arrival time between consecutive queries *of the
  /// same class* (the paper's t, swept from 10 ms to 20,000 ms; smaller
  /// means heavier load). The merged stream's mean gap is roughly
  /// mean_interarrival / num_classes.
  util::VDuration mean_interarrival = 1000 * util::kMillisecond;
  /// Hard cap on any single inter-arrival gap (paper: 30,000 ms).
  util::VDuration max_interarrival = 30000 * util::kMillisecond;
  double zipf_alpha = 1.0;
  /// Number of Zipf ranks (support size of the discrete distribution).
  int zipf_support = 1000;
  int num_origin_nodes = 100;
  double cost_jitter = 0.05;
};

/// Solves for the time unit u such that E[min(u * R, cap)] == target, where
/// R is Zipf(alpha) over ranks 1..n. Exposed for tests; monotone in u, so a
/// simple bisection suffices.
double SolveZipfUnit(util::VDuration target_mean, util::VDuration cap, int n,
                     double alpha);

/// Generates the workload: each class emits a stream whose gaps are
/// u * R (R Zipf-distributed, capped at max_interarrival), with u chosen so
/// each class's mean gap matches `config.mean_interarrival`; streams are
/// merged, sorted and truncated to `config.num_queries` arrivals.
Trace GenerateZipfWorkload(const ZipfWorkloadConfig& config, util::Rng& rng);

}  // namespace qa::workload

#endif  // QAMARKET_WORKLOAD_ZIPF_WORKLOAD_H_
