#include "util/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace qa::util {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::UniformReal(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(std::clamp(p, 0.0, 1.0));
  return dist(engine_);
}

double Rng::Exponential(double mean) {
  assert(mean > 0.0);
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(engine_);
}

double Rng::Normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

const Rng::ZipfTable& Rng::GetZipfTable(int64_t n, double alpha) {
  for (const ZipfTable& t : zipf_cache_) {
    // Cache-key identity: alpha is caller-provided and stored verbatim, so
    // only the bitwise-same exponent may reuse a table.
    // qa-lint: allow(QA-NUM-001)
    if (t.n == n && t.alpha == alpha) return t;
  }
  ZipfTable table;
  table.n = n;
  table.alpha = alpha;
  table.cdf.resize(static_cast<size_t>(n));
  double sum = 0.0;
  for (int64_t k = 1; k <= n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k), alpha);
    table.cdf[static_cast<size_t>(k - 1)] = sum;
  }
  for (double& v : table.cdf) v /= sum;
  zipf_cache_.push_back(std::move(table));
  return zipf_cache_.back();
}

int64_t Rng::Zipf(int64_t n, double alpha) {
  assert(n >= 1);
  const ZipfTable& table = GetZipfTable(n, alpha);
  double u = UniformReal(0.0, 1.0);
  auto it = std::lower_bound(table.cdf.begin(), table.cdf.end(), u);
  if (it == table.cdf.end()) return n;
  return static_cast<int64_t>(it - table.cdf.begin()) + 1;
}

std::vector<int> Rng::Permutation(int n) {
  std::vector<int> perm(static_cast<size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), engine_);
  return perm;
}

std::vector<int> Rng::Sample(int n, int k) {
  assert(k <= n);
  std::vector<int> perm = Permutation(n);
  perm.resize(static_cast<size_t>(k));
  return perm;
}

Rng Rng::Fork() { return Rng(engine_()); }

}  // namespace qa::util
