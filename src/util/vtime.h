#ifndef QAMARKET_UTIL_VTIME_H_
#define QAMARKET_UTIL_VTIME_H_

#include <cstdint>
#include <string>

namespace qa::util {

/// Virtual time in the discrete-event simulator, measured in microseconds.
///
/// The paper reports everything in milliseconds; we keep microsecond
/// resolution internally so that sub-millisecond costs (e.g. network hops,
/// CPU-bound predicate evaluation) do not collapse to zero.
using VTime = int64_t;
using VDuration = int64_t;

inline constexpr VDuration kMicrosecond = 1;
inline constexpr VDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr VDuration kSecond = 1000 * kMillisecond;

/// Converts a duration to fractional milliseconds.
inline double ToMillis(VDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

/// Converts a duration to fractional seconds.
inline double ToSeconds(VDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Converts fractional milliseconds to a duration (rounded to nearest us).
inline VDuration FromMillis(double ms) {
  return static_cast<VDuration>(ms * static_cast<double>(kMillisecond) + 0.5);
}

/// Converts fractional seconds to a duration (rounded to nearest us).
inline VDuration FromSeconds(double s) {
  return static_cast<VDuration>(s * static_cast<double>(kSecond) + 0.5);
}

/// Formats a virtual time as "1234.567ms" for logs and bench output.
std::string FormatTime(VTime t);

}  // namespace qa::util

#endif  // QAMARKET_UTIL_VTIME_H_
