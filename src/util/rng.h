#ifndef QAMARKET_UTIL_RNG_H_
#define QAMARKET_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace qa::util {

/// Deterministic pseudo-random number generator used throughout the library.
///
/// All stochastic components (workload generators, catalog placement, baseline
/// allocators with randomized choices) draw from an explicitly seeded Rng so
/// that every experiment is reproducible from its printed seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed), seed_(seed) {}

  uint64_t seed() const { return seed_; }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform real in [lo, hi).
  double UniformReal(double lo, double hi);

  /// Bernoulli draw with success probability `p` in [0, 1].
  bool Bernoulli(double p);

  /// Exponentially distributed real with the given mean (> 0).
  double Exponential(double mean);

  /// Normally distributed real.
  double Normal(double mean, double stddev);

  /// Zipf-distributed integer rank in [1, n] with exponent `alpha` > 0.
  ///
  /// P(X = k) is proportional to 1 / k^alpha. Uses inverse-CDF sampling over
  /// the precomputed harmonic weights (n is at most a few thousand in all of
  /// our workloads, so the O(log n) lookup after O(n) setup is fine).
  int64_t Zipf(int64_t n, double alpha);

  /// Returns a random permutation of {0, 1, ..., n-1}.
  std::vector<int> Permutation(int n);

  /// Picks `k` distinct indices out of [0, n) uniformly (k <= n).
  std::vector<int> Sample(int n, int k);

  /// Forks an independent generator; the child's stream is a deterministic
  /// function of this generator's current state.
  Rng Fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  struct ZipfTable {
    int64_t n = 0;
    double alpha = 0.0;
    std::vector<double> cdf;
  };

  const ZipfTable& GetZipfTable(int64_t n, double alpha);

  std::mt19937_64 engine_;
  uint64_t seed_;
  std::vector<ZipfTable> zipf_cache_;
};

/// Counter-based splittable stream for per-event randomness (SplitMix64).
///
/// Unlike Rng, whose engine state advances with every draw anywhere in the
/// program, a SplitMix64 stream is a pure function of its seed: seeding one
/// per simulation event (`SplitMix64(MixSeed(run_seed, event_index))`)
/// yields draws that depend only on (run seed, event index) — never on how
/// many draws other events made. This is what keeps sampled solicitation
/// byte-identical at any thread count and under any event interleaving.
/// The state is 8 bytes and construction is free, so making one per event
/// on a hot path costs nothing.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Next 64 uniform bits.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, n) for n >= 1 (Lemire's multiply-shift; the
  /// bias over 64 input bits is < 2^-32 for any n our federations reach).
  uint64_t NextBounded(uint64_t n) {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * n) >> 64);
  }

 private:
  uint64_t state_;
};

/// Mixes a run-level seed with a per-event counter into an independent
/// SplitMix64 seed (a splitmix finalizer over the xor, so that nearby
/// counters produce uncorrelated streams).
inline uint64_t MixSeed(uint64_t seed, uint64_t counter) {
  return SplitMix64(seed ^ (counter * 0xd6e8feb86659fd93ULL)).Next();
}

}  // namespace qa::util

#endif  // QAMARKET_UTIL_RNG_H_
