#ifndef QAMARKET_UTIL_RNG_H_
#define QAMARKET_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace qa::util {

/// Deterministic pseudo-random number generator used throughout the library.
///
/// All stochastic components (workload generators, catalog placement, baseline
/// allocators with randomized choices) draw from an explicitly seeded Rng so
/// that every experiment is reproducible from its printed seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed), seed_(seed) {}

  uint64_t seed() const { return seed_; }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform real in [lo, hi).
  double UniformReal(double lo, double hi);

  /// Bernoulli draw with success probability `p` in [0, 1].
  bool Bernoulli(double p);

  /// Exponentially distributed real with the given mean (> 0).
  double Exponential(double mean);

  /// Normally distributed real.
  double Normal(double mean, double stddev);

  /// Zipf-distributed integer rank in [1, n] with exponent `alpha` > 0.
  ///
  /// P(X = k) is proportional to 1 / k^alpha. Uses inverse-CDF sampling over
  /// the precomputed harmonic weights (n is at most a few thousand in all of
  /// our workloads, so the O(log n) lookup after O(n) setup is fine).
  int64_t Zipf(int64_t n, double alpha);

  /// Returns a random permutation of {0, 1, ..., n-1}.
  std::vector<int> Permutation(int n);

  /// Picks `k` distinct indices out of [0, n) uniformly (k <= n).
  std::vector<int> Sample(int n, int k);

  /// Forks an independent generator; the child's stream is a deterministic
  /// function of this generator's current state.
  Rng Fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  struct ZipfTable {
    int64_t n = 0;
    double alpha = 0.0;
    std::vector<double> cdf;
  };

  const ZipfTable& GetZipfTable(int64_t n, double alpha);

  std::mt19937_64 engine_;
  uint64_t seed_;
  std::vector<ZipfTable> zipf_cache_;
};

}  // namespace qa::util

#endif  // QAMARKET_UTIL_RNG_H_
