#ifndef QAMARKET_UTIL_TABLE_WRITER_H_
#define QAMARKET_UTIL_TABLE_WRITER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace qa::util {

/// Accumulates rows and renders them as an aligned text table (for bench
/// output matching the paper's tables/figures) or as CSV.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Starts a new row; subsequent Add* calls append cells to it.
  void BeginRow();
  void AddCell(const std::string& value);
  void AddCell(const char* value);
  void AddCell(double value, int precision = 2);
  void AddCell(int64_t value);
  void AddCell(int value) { AddCell(static_cast<int64_t>(value)); }
  void AddCell(size_t value) { AddCell(static_cast<int64_t>(value)); }

  /// Convenience: appends a full row at once.
  template <typename... Cells>
  void AddRow(Cells&&... cells) {
    BeginRow();
    (AddCell(std::forward<Cells>(cells)), ...);
  }

  size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Renders an aligned, pipe-separated table.
  void Print(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (cells containing commas are quoted).
  void PrintCsv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qa::util

#endif  // QAMARKET_UTIL_TABLE_WRITER_H_
