#include "util/vtime.h"

#include <cstdio>

namespace qa::util {

std::string FormatTime(VTime t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3fms", ToMillis(t));
  return buf;
}

}  // namespace qa::util
