#ifndef QAMARKET_UTIL_MATHUTIL_H_
#define QAMARKET_UTIL_MATHUTIL_H_

#include <cstddef>
#include <vector>

namespace qa::util {

/// Arithmetic mean; returns 0 for an empty vector.
double Mean(const std::vector<double>& xs);

/// Population standard deviation; returns 0 for fewer than two samples.
double StdDev(const std::vector<double>& xs);

/// Linear-interpolated percentile, `p` in [0, 100]. Sorts a copy.
/// Returns 0 for an empty vector.
double Percentile(std::vector<double> xs, double p);

/// Sum of the vector.
double Sum(const std::vector<double>& xs);

/// Relative difference |a-b| / max(|a|,|b|, eps).
double RelDiff(double a, double b, double eps = 1e-12);

/// True if |a-b| <= tol.
bool Near(double a, double b, double tol);

}  // namespace qa::util

#endif  // QAMARKET_UTIL_MATHUTIL_H_
