#ifndef QAMARKET_UTIL_STATUS_H_
#define QAMARKET_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace qa::util {

/// Error category for a failed operation.
///
/// The library does not use exceptions (per the Google style guide); fallible
/// operations return a Status or a StatusOr<T> instead, in the spirit of the
/// Status types used by Arrow and RocksDB.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: either OK or a code plus a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or an error Status.
///
/// Accessing the value of a non-OK StatusOr is a programming error and
/// asserts in debug builds.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (mirrors absl::StatusOr).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace qa::util

/// Propagates a non-OK Status out of the current function.
#define QA_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::qa::util::Status _qa_status = (expr);       \
    if (!_qa_status.ok()) return _qa_status;      \
  } while (false)

#endif  // QAMARKET_UTIL_STATUS_H_
