#ifndef QAMARKET_UTIL_TASK_RUNNER_H_
#define QAMARKET_UTIL_TASK_RUNNER_H_

#include <functional>

namespace qa::util {

/// Fork-join execution abstraction for code that wants intra-run
/// parallelism without depending on a concrete thread pool (the allocation
/// and sim layers sit *below* qa_exec in the dependency graph, so they
/// cannot see exec::ThreadPool directly).
///
/// Contract: ParallelFor(n, fn) invokes fn(0) ... fn(n-1) exactly once
/// each, possibly concurrently, and returns only after every invocation
/// finished (a full barrier). Implementations must not reorder visible
/// side effects across the return: everything fn wrote happens-before the
/// caller's next statement. Callers are responsible for making the fn(i)
/// invocations mutually data-race-free (disjoint writes); determinism of
/// *results* must never depend on the interleaving, only on the index.
///
/// Re-entrancy: ParallelFor must not be called from inside one of its own
/// fn invocations (a nested call on a shared fixed-size pool can deadlock).
/// The federation's bulk-synchronous shard loop and the allocator's bid
/// scan both run fork-join phases strictly one at a time, so a single
/// shared pool serves every phase of a run.
class TaskRunner {
 public:
  virtual ~TaskRunner() = default;

  /// Upper bound on how many fn invocations can make progress at once
  /// (>= 1). Callers use it to pick chunk counts; results must not depend
  /// on the value.
  virtual int concurrency() const = 0;

  virtual void ParallelFor(int n,
                           const std::function<void(int)>& fn) const = 0;
};

/// Runs everything inline on the calling thread. The semantics baseline:
/// any TaskRunner must produce byte-identical results to this one.
class SerialRunner final : public TaskRunner {
 public:
  int concurrency() const override { return 1; }
  void ParallelFor(int n, const std::function<void(int)>& fn) const override {
    for (int i = 0; i < n; ++i) fn(i);
  }
};

}  // namespace qa::util

#endif  // QAMARKET_UTIL_TASK_RUNNER_H_
