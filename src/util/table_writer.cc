#include "util/table_writer.h"

#include <algorithm>
#include <cstdio>

namespace qa::util {

void TableWriter::BeginRow() { rows_.emplace_back(); }

void TableWriter::AddCell(const std::string& value) {
  rows_.back().push_back(value);
}

void TableWriter::AddCell(const char* value) {
  rows_.back().emplace_back(value);
}

void TableWriter::AddCell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  rows_.back().emplace_back(buf);
}

void TableWriter::AddCell(int64_t value) {
  rows_.back().push_back(std::to_string(value));
}

void TableWriter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  print_row(header_);
  os << "|";
  for (size_t c = 0; c < widths.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

void TableWriter::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ",";
      if (row[c].find(',') != std::string::npos) {
        os << '"' << row[c] << '"';
      } else {
        os << row[c];
      }
    }
    os << "\n";
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace qa::util
