#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace qa::util {

namespace {

LogLevel InitialLevel() {
  LogLevel level = LogLevel::kWarning;
  if (const char* env = std::getenv("QA_LOG_LEVEL")) {
    ParseLogLevel(env, &level);  // unparsable values keep the default
  }
  return level;
}

std::atomic<LogLevel>& Level() {
  // Lazily read QA_LOG_LEVEL on first access so the level is honored no
  // matter which translation unit logs first (no static-init ordering).
  static std::atomic<LogLevel> level{InitialLevel()};
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// Per-thread virtual-clock provider installed by ScopedVTimeClock.
thread_local ScopedVTimeClock::NowFn g_now_fn = nullptr;
thread_local const void* g_now_ctx = nullptr;

}  // namespace

void SetLogLevel(LogLevel level) { Level().store(level); }

LogLevel GetLogLevel() { return Level().load(); }

bool ParseLogLevel(std::string_view text, LogLevel* out) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug" || lower == "0") {
    *out = LogLevel::kDebug;
  } else if (lower == "info" || lower == "1") {
    *out = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn" || lower == "2") {
    *out = LogLevel::kWarning;
  } else if (lower == "error" || lower == "3") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

ScopedVTimeClock::ScopedVTimeClock(NowFn now, const void* ctx)
    : previous_now_(g_now_fn), previous_ctx_(g_now_ctx) {
  g_now_fn = now;
  g_now_ctx = ctx;
}

ScopedVTimeClock::~ScopedVTimeClock() {
  g_now_fn = previous_now_;
  g_now_ctx = previous_ctx_;
}

void LogMessage(LogLevel level, const std::string& message) {
  if (level < Level().load()) return;
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  if (g_now_fn != nullptr) {
    int64_t now_us = g_now_fn(g_now_ctx);
    std::fprintf(stderr, "[%s] [t=%lld.%03lldms] %s\n", LevelName(level),
                 static_cast<long long>(now_us / 1000),
                 static_cast<long long>(now_us % 1000), message.c_str());
  } else {
    std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
  }
  std::fflush(stderr);
}

}  // namespace qa::util
