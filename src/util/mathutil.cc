#include "util/mathutil.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace qa::util {

double Sum(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return Sum(xs) / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double mean = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mean) * (x - mean);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  double rank = (p / 100.0) * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double RelDiff(double a, double b, double eps) {
  double denom = std::max({std::fabs(a), std::fabs(b), eps});
  return std::fabs(a - b) / denom;
}

bool Near(double a, double b, double tol) { return std::fabs(a - b) <= tol; }

}  // namespace qa::util
