#ifndef QAMARKET_UTIL_LOGGING_H_
#define QAMARKET_UTIL_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace qa::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
/// The current minimum level. On first use the level is initialized from
/// the QA_LOG_LEVEL environment variable ("debug", "info", "warning",
/// "error" or 0-3, case-insensitive); unset or unparsable means kWarning.
LogLevel GetLogLevel();

/// Parses a QA_LOG_LEVEL-style spelling into a level. Accepts the names
/// above (plus "warn") in any case and the numeric values 0-3. Returns
/// false (leaving `out` untouched) on anything else.
bool ParseLogLevel(std::string_view text, LogLevel* out);

/// Emits a single log line to stderr (thread-safe at the line level).
void LogMessage(LogLevel level, const std::string& message);

/// Installs a virtual-clock provider for the current thread: while one is
/// in scope, this thread's log lines are prefixed with the current virtual
/// time ("[t=412.250ms]"), so interleaved per-run logs from the parallel
/// experiment runner can be correlated with trace records. Scopes nest;
/// destruction restores the previous provider. The provider must stay
/// valid for the lifetime of the scope.
class ScopedVTimeClock {
 public:
  /// `now(ctx)` returns the current virtual time in microseconds.
  using NowFn = int64_t (*)(const void* ctx);

  ScopedVTimeClock(NowFn now, const void* ctx);
  ~ScopedVTimeClock();

  ScopedVTimeClock(const ScopedVTimeClock&) = delete;
  ScopedVTimeClock& operator=(const ScopedVTimeClock&) = delete;

 private:
  NowFn previous_now_;
  const void* previous_ctx_;
};

namespace internal {

/// Stream adapter behind the QA_LOG macro; flushes on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }

  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace qa::util

#define QA_LOG(level) \
  ::qa::util::internal::LogStream(::qa::util::LogLevel::k##level)

#endif  // QAMARKET_UTIL_LOGGING_H_
