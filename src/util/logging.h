#ifndef QAMARKET_UTIL_LOGGING_H_
#define QAMARKET_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace qa::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits a single log line to stderr (thread-safe at the line level).
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

/// Stream adapter behind the QA_LOG macro; flushes on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }

  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace qa::util

#define QA_LOG(level) \
  ::qa::util::internal::LogStream(::qa::util::LogLevel::k##level)

#endif  // QAMARKET_UTIL_LOGGING_H_
