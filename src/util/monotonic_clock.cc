#include "util/monotonic_clock.h"

#include <chrono>
#include <ctime>

namespace qa::util::clock_detail {

int64_t ChronoNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace qa::util::clock_detail

namespace qa::util {

int64_t MonotonicClock::ProcessCpuNanos() {
#if defined(__unix__) || defined(__APPLE__)
  timespec ts;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return int64_t{ts.tv_sec} * 1000000000 + ts.tv_nsec;
#else
  return clock_detail::ChronoNanos();
#endif
}

}  // namespace qa::util

namespace qa::util::clock_detail {

#if defined(__x86_64__)
TscScale CalibrateTsc() {
  const int64_t t0 = ChronoNanos();
  const uint64_t c0 = __rdtsc();
  const int64_t target = t0 + 2000000;  // ~2ms window, once per process
  int64_t t1;
  do {
    t1 = ChronoNanos();
  } while (t1 < target);
  const uint64_t c1 = __rdtsc();
  TscScale scale;
  const double ns_per_tick =
      static_cast<double>(t1 - t0) / static_cast<double>(c1 - c0);
  scale.mult = static_cast<uint64_t>(ns_per_tick * 4294967296.0);
  scale.anchor_ns = t1;
  scale.anchor_ticks = c1;
  return scale;
}
#endif  // defined(__x86_64__)

}  // namespace qa::util::clock_detail
