#ifndef QAMARKET_UTIL_MONOTONIC_CLOCK_H_
#define QAMARKET_UTIL_MONOTONIC_CLOCK_H_

#include <cstdint>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace qa::util {

namespace clock_detail {

/// std::chrono::steady_clock reading; the only place the project touches
/// the chrono clocks (lint rule QA-DET-001 whitelists this file pair).
int64_t ChronoNanos();

#if defined(__x86_64__)
/// TSC fast path. The phase probes sit on per-allocation paths where a
/// ~25ns std::chrono read (vDSO clock_gettime) is a measurable fraction of
/// the work being timed; an inlined rdtsc plus a fixed-point scale is ~3x
/// cheaper. The scale is calibrated once per process against the chrono
/// clock over a short spin, then ns = anchor + (delta_ticks * mult) >> 32.
/// Readings are observability side-channel only (DESIGN.md §9), so the
/// ~0.1% calibration error and theoretical cross-socket skew on pre-
/// invariant-TSC hardware cannot perturb simulation results.
struct TscScale {
  uint64_t mult;  // ns per tick, 32.32 fixed point
  int64_t anchor_ns;
  uint64_t anchor_ticks;
};

TscScale CalibrateTsc();
#endif  // defined(__x86_64__)

}  // namespace clock_detail

/// The project's only legal wall-clock call site (lint rule QA-DET-001).
///
/// The simulator runs on virtual time (util::VTime); wall time exists
/// purely as an observability side channel — phase profiling, bench
/// throughput figures — and must never feed simulation state, trace bytes
/// or anything else a seeded rerun is expected to reproduce (DESIGN.md §9,
/// the determinism side-channel rule). Funneling every reading through
/// this shim makes that auditable: qa_lint flags any other use of the
/// std::chrono clocks (QA-DET-001), and its cross-file taint pass
/// (QA-DET-004) treats every reader below — and every helper whose
/// return value chains from one — as a taint source: a reading may flow
/// into the QA_METRICS-gated metrics sidecar and nowhere else, so a
/// wall-clock value leaking into the sim layer cannot land silently.
class MonotonicClock {
 public:
  /// Nanoseconds on a monotonic clock with an arbitrary epoch. Only
  /// differences are meaningful. Defined inline so hot probe sites pay an
  /// rdtsc plus a multiply, not a cross-TU call.
  static int64_t NowNanos() {
#if defined(__x86_64__)
    static const clock_detail::TscScale scale = clock_detail::CalibrateTsc();
    const uint64_t delta = __rdtsc() - scale.anchor_ticks;
    return scale.anchor_ns +
           static_cast<int64_t>(
               (static_cast<unsigned __int128>(delta) * scale.mult) >> 32);
#else
    return clock_detail::ChronoNanos();
#endif
  }

  /// Seconds elapsed since a NowNanos() reading — the bench-loop idiom.
  static double SecondsSince(int64_t start_nanos) {
    return static_cast<double>(NowNanos() - start_nanos) * 1e-9;
  }

  /// Nanoseconds of CPU time this process has consumed. For A/B overhead
  /// ratios: on a shared box, wall-clock ratios are dominated by scheduler
  /// preemption noise, which CPU time does not see. Coarser and slower to
  /// read than NowNanos — benchmark-loop use only, never per-event.
  static int64_t ProcessCpuNanos();
};

}  // namespace qa::util

#endif  // QAMARKET_UTIL_MONOTONIC_CLOCK_H_
