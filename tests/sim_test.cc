#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "allocation/factory.h"
#include "sim/event_queue.h"
#include "sim/federation.h"
#include "sim/node.h"
#include "sim/scenario.h"
#include "workload/uniform.h"

namespace qa::sim {
namespace {

using util::kMillisecond;
using util::kSecond;

// ------------------------------------------------------------ EventQueue

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue<int> q;
  std::vector<int> order;
  q.Schedule(30, 3);
  q.Schedule(10, 1);
  q.Schedule(20, 2);
  q.RunAll([&](int tag) { order.push_back(tag); });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueueTest, FifoTieBreak) {
  EventQueue<int> q;
  std::vector<int> order;
  q.Schedule(10, 1);
  q.Schedule(10, 2);
  q.Schedule(10, 3);
  q.RunAll([&](int tag) { order.push_back(tag); });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue<int> q;
  int fired = 0;
  q.Schedule(10, 1);
  q.RunAll([&](int tag) {
    ++fired;
    if (tag == 1) q.ScheduleAfter(5, 2);
  });
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 15);
}

TEST(EventQueueTest, RunUntilStopsAtBoundary) {
  EventQueue<int> q;
  int fired = 0;
  q.Schedule(10, 1);
  q.Schedule(20, 2);
  q.RunUntil(15, [&](int) { ++fired; });
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(q.empty());
}

TEST(EventQueueTest, ReserveDoesNotDisturbOrdering) {
  EventQueue<int> q;
  q.Reserve(100);
  std::vector<int> order;
  for (int i = 9; i >= 0; --i) q.Schedule(i, i);
  q.RunAll([&](int tag) { order.push_back(tag); });
  ASSERT_EQ(order.size(), 10u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(EventQueueTest, SchedulingIntoThePastAssertsAndClamps) {
  EventQueue<int> q;
  q.Schedule(10, 1);
  q.RunAll([](int) {});
  ASSERT_EQ(q.now(), 10);
  // A `when` before now() is a caller bug: debug builds trip the assert;
  // release builds clamp the event to now() instead of time-traveling.
  EXPECT_DEBUG_DEATH(q.Schedule(5, 2), "cannot schedule into the past");
#ifdef NDEBUG
  std::vector<std::pair<util::VTime, int>> fired;
  q.RunAll([&](int tag) { fired.emplace_back(q.now(), tag); });
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].first, 10);  // clamped to now(), not 5
  EXPECT_EQ(fired[0].second, 2);
  EXPECT_EQ(q.now(), 10);
#endif
}

TEST(EventQueueTest, DescribeEventNamesKindAndTarget) {
  QueryTask task;
  task.query_id = 77;
  EXPECT_EQ(DescribeEvent(SimEvent::MakeDeliver(5, task)),
            "deliver node=5 query=77");
  EXPECT_EQ(DescribeEvent(SimEvent::MakeComplete(3, task)),
            "complete node=3 query=77");
  EXPECT_EQ(DescribeEvent(SimEvent::MakeMarketTick()), "market-tick");
  // Payload types without an overload get the honest fallback, never a
  // compile error — the diagnostic must not constrain what a queue holds.
  EXPECT_EQ(DescribeEvent(42), "(event type has no DescribeEvent overload)");
}

TEST(EventQueueTest, PastTimestampDiagnosticNamesTheOffendingEvent) {
  // The report must identify *which* event time-traveled (kind, node,
  // query) in every build — under NDEBUG the assert compiles away and a
  // bare clamp would hide exactly the shard-merge ordering bugs this
  // diagnostic exists to catch.
  EventQueue<SimEvent> q;
  q.Schedule(10, 1, SimEvent::MakeMarketTick());
  q.RunAll([](const SimEvent&) {});
  ASSERT_EQ(q.now(), 10);
  QueryTask task;
  task.query_id = 77;
  SimEvent late = SimEvent::MakeDeliver(5, task);
#ifdef NDEBUG
  ::testing::internal::CaptureStderr();
  q.Schedule(4, 2, late);
  std::string report = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(report.find("scheduling into the past"), std::string::npos)
      << report;
  EXPECT_NE(report.find("when=4us < now=10us"), std::string::npos) << report;
  EXPECT_NE(report.find("deliver node=5 query=77"), std::string::npos)
      << report;
  // ... and the event still fires, clamped to now().
  int fired = 0;
  q.RunAll([&](const SimEvent& event) {
    ++fired;
    EXPECT_EQ(event.kind, SimEvent::Kind::kDeliver);
    EXPECT_EQ(q.now(), 10);
  });
  EXPECT_EQ(fired, 1);
#else
  // Debug builds die on the assert, with the description in the report.
  EXPECT_DEATH(q.Schedule(4, 2, late), "deliver node=5 query=77");
#endif
}

// --------------------------------------------------------------- SimNode

TEST(SimNodeTest, SerialExecutionAccounting) {
  SimNode node(0);
  EXPECT_TRUE(node.idle());

  QueryTask t1;
  t1.query_id = 1;
  t1.exec_time = 100 * kMillisecond;
  t1.work_units = 5.0;
  EXPECT_TRUE(node.Enqueue(t1, 0));  // was idle
  QueryTask t2 = t1;
  t2.query_id = 2;
  EXPECT_FALSE(node.Enqueue(t2, 0));  // already has work

  EXPECT_EQ(node.queue_length(), 2u);
  EXPECT_EQ(node.Backlog(0), 200 * kMillisecond);
  EXPECT_DOUBLE_EQ(node.QueuedWork(), 10.0);

  QueryTask running = node.BeginNext(0);
  EXPECT_EQ(running.query_id, 1);
  EXPECT_FALSE(node.idle());
  // Halfway through the first task the backlog is 150 ms.
  EXPECT_EQ(node.Backlog(50 * kMillisecond), 150 * kMillisecond);

  EXPECT_TRUE(node.CompleteCurrent(100 * kMillisecond));  // more work waits
  EXPECT_DOUBLE_EQ(node.QueuedWork(), 5.0);
  node.BeginNext(100 * kMillisecond);
  EXPECT_FALSE(node.CompleteCurrent(200 * kMillisecond));
  EXPECT_EQ(node.completed(), 2);
  EXPECT_EQ(node.busy_time(), 200 * kMillisecond);
  EXPECT_EQ(node.last_idle_at(), 200 * kMillisecond);
}

// ------------------------------------------------------------ Federation

class FederationTest : public ::testing::Test {
 protected:
  workload::Trace MakeTrace(int n, util::VDuration gap,
                            query::QueryClassId k) {
    workload::Trace trace;
    for (int i = 0; i < n; ++i) {
      workload::Arrival a;
      a.time = i * gap;
      a.class_id = k;
      a.origin = 0;
      a.cost_jitter = 1.0;
      trace.Add(a);
    }
    return trace;
  }
};

TEST_F(FederationTest, AllQueriesCompleteUnderLightLoad) {
  auto model = BuildFig1CostModel();
  allocation::AllocatorParams params;
  params.cost_model = model.get();
  auto alloc = allocation::CreateAllocator("Greedy", params);
  FederationConfig config;
  Federation fed(model.get(), alloc.get(), config);

  workload::Trace trace = MakeTrace(10, 1 * kSecond, 0);
  SimMetrics m = fed.Run(trace);
  EXPECT_EQ(m.completed, 10);
  EXPECT_EQ(m.dropped, 0);
  EXPECT_EQ(m.response_time_ms.count(), 10u);
  // Light load: response approx equals execution time (400-450 ms) plus
  // small network delays.
  EXPECT_LT(m.MeanResponseMs(), 600.0);
  EXPECT_GT(m.MeanResponseMs(), 300.0);
}

TEST_F(FederationTest, BacklogGrowsUnderOverload) {
  auto model = BuildFig1CostModel();
  allocation::AllocatorParams params;
  params.cost_model = model.get();
  auto alloc = allocation::CreateAllocator("Greedy", params);
  FederationConfig config;
  Federation fed(model.get(), alloc.get(), config);

  // q1 takes ~400 ms; arrivals every 100 ms on two nodes: heavy overload.
  workload::Trace trace = MakeTrace(50, 100 * kMillisecond, 0);
  SimMetrics m = fed.Run(trace);
  EXPECT_EQ(m.completed, 50);
  // Later queries queue behind earlier ones: mean response far above the
  // bare execution time.
  EXPECT_GT(m.MeanResponseMs(), 1000.0);
}

TEST_F(FederationTest, QaNtRejectionsRetryAndComplete) {
  auto model = BuildFig1CostModel();
  allocation::AllocatorParams params;
  params.cost_model = model.get();
  params.period = 500 * kMillisecond;
  auto alloc = allocation::CreateAllocator("QA-NT", params);
  FederationConfig config;
  config.period = 500 * kMillisecond;
  Federation fed(model.get(), alloc.get(), config);

  // Burst of 10 q1 at t=0: QA-NT admits only what fits each period, the
  // rest retries at period boundaries; all must eventually complete.
  workload::Trace trace = MakeTrace(10, 0, 0);
  SimMetrics m = fed.Run(trace);
  EXPECT_EQ(m.completed, 10);
  EXPECT_GT(m.retries, 0);
}

TEST_F(FederationTest, MessagesAreCounted) {
  auto model = BuildFig1CostModel();
  allocation::AllocatorParams params;
  params.cost_model = model.get();
  auto greedy = allocation::CreateAllocator("Greedy", params);
  FederationConfig config;
  Federation fed(model.get(), greedy.get(), config);
  SimMetrics m = fed.Run(MakeTrace(10, 1 * kSecond, 0));
  // Greedy probes both nodes per query: 5 messages per query.
  EXPECT_EQ(m.messages, 10 * 5);
}

TEST_F(FederationTest, InfeasibleQueriesDroppedAfterRetries) {
  auto model = std::make_unique<query::MatrixCostModel>(1, 1);
  // Class 0 evaluable nowhere.
  allocation::AllocatorParams params;
  params.cost_model = model.get();
  auto alloc = allocation::CreateAllocator("Random", params);
  FederationConfig config;
  config.max_retries = 3;
  Federation fed(model.get(), alloc.get(), config);
  SimMetrics m = fed.Run(MakeTrace(2, 0, 0));
  EXPECT_EQ(m.completed, 0);
  EXPECT_EQ(m.dropped, 2);
}

TEST_F(FederationTest, DeterministicAcrossRuns) {
  auto run_once = [this]() {
    auto model = BuildFig1CostModel();
    allocation::AllocatorParams params;
    params.cost_model = model.get();
    params.seed = 7;
    auto alloc = allocation::CreateAllocator("Random", params);
    FederationConfig config;
    Federation fed(model.get(), alloc.get(), config);
    return fed.Run(MakeTrace(30, 200 * kMillisecond, 0)).MeanResponseMs();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST_F(FederationTest, OutagesBounceBlindAssignmentsButEverythingCompletes) {
  auto model = BuildFig1CostModel();
  allocation::AllocatorParams params;
  params.cost_model = model.get();
  params.seed = 7;
  auto alloc = allocation::CreateAllocator("Random", params);
  FederationConfig config;
  config.max_retries = 500;
  // Node 0 unreachable during [1 s, 6 s).
  config.outages.push_back({0, 1 * kSecond, 6 * kSecond});
  Federation fed(model.get(), alloc.get(), config);
  SimMetrics m = fed.Run(MakeTrace(30, 300 * kMillisecond, 0));
  EXPECT_GT(m.bounced, 0);
  EXPECT_EQ(m.completed, 30);
  EXPECT_EQ(m.dropped, 0);
}

TEST_F(FederationTest, QaNtRoutesAroundOutageWithoutBounces) {
  auto model = BuildFig1CostModel();
  allocation::AllocatorParams params;
  params.cost_model = model.get();
  params.period = 500 * kMillisecond;
  auto alloc = allocation::CreateAllocator("QA-NT", params);
  FederationConfig config;
  config.period = 500 * kMillisecond;
  config.max_retries = 500;
  config.outages.push_back({0, 1 * kSecond, 6 * kSecond});
  Federation fed(model.get(), alloc.get(), config);
  SimMetrics m = fed.Run(MakeTrace(20, 400 * kMillisecond, 0));
  // The market never selects an unreachable node: no network bounces.
  EXPECT_EQ(m.bounced, 0);
  EXPECT_EQ(m.completed, 20);
}

// Hand-computed outage accounting. Scenario (Fig. 1 model, 2 nodes, both
// feasible for q1): ten q1 queries from node 0, one per second at
// t = 0..9 s; node 0 is unreachable during [2 s, 5 s).
//
// QA-NT asks every feasible *online* node (request + offer/decline reply
// each, plus the final accept: 2*asked+1 messages). Load is far below
// capacity (one 400-450 ms query per second against a 500 ms period), so
// every query is admitted on its first attempt and nothing bounces — the
// market simply does not ask the dead node:
//   7 queries outside the outage:  asked=2 -> 5 messages each = 35
//   3 queries during it (t=2,3,4): asked=1 -> 3 messages each =  9
//                                                        total = 44
TEST_F(FederationTest, QaNtOutageMessageAccountingByHand) {
  auto model = BuildFig1CostModel();
  allocation::AllocatorParams params;
  params.cost_model = model.get();
  params.period = 500 * kMillisecond;
  auto alloc = allocation::CreateAllocator("QA-NT", params);
  FederationConfig config;
  config.period = 500 * kMillisecond;
  config.outages.push_back({0, 2 * kSecond, 5 * kSecond});
  Federation fed(model.get(), alloc.get(), config);

  SimMetrics m = fed.Run(MakeTrace(10, 1 * kSecond, 0));
  EXPECT_EQ(m.completed, 10);
  EXPECT_EQ(m.messages, 44);
  EXPECT_EQ(m.bounced, 0);
  EXPECT_EQ(m.retries, 0);
  EXPECT_EQ(m.dropped, 0);
  ASSERT_EQ(m.retries_per_class.size(), 2u);
  EXPECT_EQ(m.retries_per_class[0], 0);
  EXPECT_EQ(m.retries_per_class[1], 0);
}

// Same scenario through RoundRobin, which is blind to liveness and pays
// one message per allocation call. The per-class pointer alternates
// n0,n1,n0,... across *calls* (retries advance it too):
//   call  1: q0 t=0s  -> n0  ok
//   call  2: q1 t=1s  -> n1  ok
//   call  3: q2 t=2s  -> n0  BOUNCE (outage)   -> retry next tick
//   call  4: q2 retry -> n1  ok
//   call  5: q3 t=3s  -> n0  BOUNCE            -> retry
//   call  6: q3 retry -> n1  ok
//   call  7: q4 t=4s  -> n0  BOUNCE            -> retry
//   call  8: q4 retry -> n1  ok
//   call  9: q5 t=5s  -> n0  ok (outage ends at 5 s, half-open)
//   calls 10-13: q6..q9 alternate n1,n0,n1,n0, all ok
// 13 calls = 13 messages; 3 bounces, each followed by one retry.
TEST_F(FederationTest, RoundRobinOutageMessageAccountingByHand) {
  auto model = BuildFig1CostModel();
  allocation::AllocatorParams params;
  params.cost_model = model.get();
  auto alloc = allocation::CreateAllocator("RoundRobin", params);
  FederationConfig config;
  config.outages.push_back({0, 2 * kSecond, 5 * kSecond});
  Federation fed(model.get(), alloc.get(), config);

  SimMetrics m = fed.Run(MakeTrace(10, 1 * kSecond, 0));
  EXPECT_EQ(m.completed, 10);
  EXPECT_EQ(m.messages, 13);
  EXPECT_EQ(m.bounced, 3);
  EXPECT_EQ(m.retries, 3);
  EXPECT_EQ(m.dropped, 0);
  ASSERT_EQ(m.retries_per_class.size(), 2u);
  EXPECT_EQ(m.retries_per_class[0], 3);
  EXPECT_EQ(m.retries_per_class[1], 0);
  ASSERT_EQ(m.dropped_per_class.size(), 2u);
  EXPECT_EQ(m.dropped_per_class[0], 0);
}

// -------------------------------------------------------------- Scenario

TEST(ScenarioTest, TwoClassCostModelShape) {
  TwoClassConfig config;
  config.num_nodes = 100;
  config.q2_feasible_fraction = 0.5;
  util::Rng rng(42);
  auto model = BuildTwoClassCostModel(config, rng);
  EXPECT_EQ(model->num_classes(), 2);
  EXPECT_EQ(model->num_nodes(), 100);
  EXPECT_EQ(model->FeasibleNodes(0).size(), 100u);
  EXPECT_EQ(model->FeasibleNodes(1).size(), 50u);
  // Costs centered on the configured averages.
  double sum0 = 0.0;
  for (catalog::NodeId j = 0; j < 100; ++j) {
    sum0 += static_cast<double>(model->Cost(0, j));
  }
  EXPECT_NEAR(sum0 / 100.0, static_cast<double>(config.q1_avg),
              static_cast<double>(config.q1_avg) * 0.15);
}

TEST(ScenarioTest, Fig1CostModelExactValues) {
  auto model = BuildFig1CostModel();
  EXPECT_EQ(model->Cost(0, 0), 400 * kMillisecond);
  EXPECT_EQ(model->Cost(1, 0), 100 * kMillisecond);
  EXPECT_EQ(model->Cost(0, 1), 450 * kMillisecond);
  EXPECT_EQ(model->Cost(1, 1), 500 * kMillisecond);
}

TEST(ScenarioTest, Table3ScenarioBuilds) {
  Table3Config config;
  config.catalog.num_relations = 100;
  config.catalog.num_nodes = 20;
  config.profiles.num_nodes = 20;
  config.templates.num_classes = 20;
  config.templates.max_joins = 10;
  util::Rng rng(42);
  Scenario scenario = BuildTable3Scenario(config, rng);
  ASSERT_NE(scenario.cost_model, nullptr);
  EXPECT_EQ(scenario.cost_model->num_nodes(), 20);
  EXPECT_EQ(scenario.cost_model->num_classes(), 20);
  // Calibration: mean best cost ~2000 ms.
  double sum = 0.0;
  for (int k = 0; k < 20; ++k) {
    sum += static_cast<double>(scenario.cost_model->BestCost(k));
  }
  EXPECT_NEAR(sum / 20.0, 2000.0 * kMillisecond, 20.0 * kMillisecond);
}

TEST(CapacityTest, EstimateIsPositiveAndBounded) {
  TwoClassConfig config;
  config.num_nodes = 10;
  util::Rng rng(42);
  auto model = BuildTwoClassCostModel(config, rng);
  double qps = EstimateCapacityQps(*model, {2.0, 1.0},
                                   500 * kMillisecond, 20);
  EXPECT_GT(qps, 0.0);
  // Hard upper bound: every node running its cheapest class continuously.
  double bound = 0.0;
  for (catalog::NodeId j = 0; j < 10; ++j) {
    util::VDuration cheapest = std::min(model->Cost(0, j),
                                        model->Cost(1, j));
    bound += 1.0 / util::ToSeconds(cheapest);
  }
  EXPECT_LE(qps, bound * 1.05);
}

}  // namespace
}  // namespace qa::sim
