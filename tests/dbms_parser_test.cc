#include <gtest/gtest.h>

#include "dbms/engine.h"
#include "dbms/lexer.h"
#include "dbms/parser.h"

namespace qa::dbms {
namespace {

// ----------------------------------------------------------------- Lexer

TEST(LexerTest, TokenizesKeywordsIdentifiersAndLiterals) {
  auto tokens = Tokenize("SELECT name FROM t WHERE x >= 3.5 AND s = 'hi'");
  ASSERT_TRUE(tokens.ok());
  const std::vector<Token>& t = *tokens;
  EXPECT_TRUE(t[0].IsKeyword("SELECT"));
  EXPECT_EQ(t[1].type, TokenType::kIdentifier);
  EXPECT_EQ(t[1].text, "name");
  EXPECT_TRUE(t[2].IsKeyword("FROM"));
  EXPECT_TRUE(t[4].IsKeyword("WHERE"));
  EXPECT_TRUE(t[6].IsSymbol(">="));
  EXPECT_EQ(t[7].type, TokenType::kFloat);
  EXPECT_TRUE(t[8].IsKeyword("AND"));
  EXPECT_EQ(t[11].type, TokenType::kString);
  EXPECT_EQ(t[11].text, "hi");
  EXPECT_EQ(t.back().type, TokenType::kEnd);
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = Tokenize("select * from T");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_TRUE((*tokens)[1].IsSymbol("*"));
  // Identifier case preserved.
  EXPECT_EQ((*tokens)[3].text, "T");
}

TEST(LexerTest, NegativeNumbersAndOperators) {
  auto tokens = Tokenize("x <> -42 y != 7");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[1].IsSymbol("<>"));
  EXPECT_EQ((*tokens)[2].type, TokenType::kInteger);
  EXPECT_EQ((*tokens)[2].text, "-42");
  EXPECT_TRUE((*tokens)[4].IsSymbol("!="));
}

TEST(LexerTest, ErrorsOnBadInput) {
  EXPECT_FALSE(Tokenize("SELECT 'unterminated").ok());
  EXPECT_FALSE(Tokenize("SELECT #").ok());
}

// ---------------------------------------------------------------- Parser

TEST(ParserTest, SelectStarSingleTable) {
  auto stmt = ParseSelect("SELECT * FROM users");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->tables.size(), 1u);
  EXPECT_EQ(stmt->tables[0].name, "users");
  EXPECT_TRUE(stmt->projections.empty());
  EXPECT_TRUE(stmt->filters.empty());
}

TEST(ParserTest, ProjectionAndUnqualifiedColumns) {
  auto stmt = ParseSelect("SELECT name, age FROM users");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->projections.size(), 2u);
  EXPECT_EQ(stmt->projections[0].column, "name");
  EXPECT_EQ(stmt->projections[0].table, 0);
}

TEST(ParserTest, WhereConjunction) {
  auto stmt = ParseSelect(
      "SELECT * FROM t WHERE a = 1 AND b < 2.5 AND c <> 'x' AND d >= -3");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->filters.size(), 4u);
  EXPECT_EQ(stmt->filters[0].op, 0);
  EXPECT_EQ(stmt->filters[0].constant.AsInt(), 1);
  EXPECT_EQ(stmt->filters[1].op, 2);
  EXPECT_DOUBLE_EQ(stmt->filters[1].constant.AsDouble(), 2.5);
  EXPECT_EQ(stmt->filters[2].op, 1);
  EXPECT_EQ(stmt->filters[2].constant.AsString(), "x");
  EXPECT_EQ(stmt->filters[3].op, 5);
  EXPECT_EQ(stmt->filters[3].constant.AsInt(), -3);
}

TEST(ParserTest, JoinWithOnClause) {
  auto stmt = ParseSelect(
      "SELECT orders.id FROM orders JOIN customers "
      "ON orders.customer_id = customers.id");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->tables.size(), 2u);
  ASSERT_EQ(stmt->joins.size(), 1u);
  EXPECT_EQ(stmt->joins[0].left_table, 0);
  EXPECT_EQ(stmt->joins[0].left_column, "customer_id");
  EXPECT_EQ(stmt->joins[0].right_table, 1);
  EXPECT_EQ(stmt->joins[0].right_column, "id");
}

TEST(ParserTest, MultiJoinChain) {
  auto stmt = ParseSelect(
      "SELECT f.id FROM f JOIN d1 ON f.a = d1.id JOIN d2 ON f.b = d2.id");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->tables.size(), 3u);
  EXPECT_EQ(stmt->joins.size(), 2u);
  EXPECT_EQ(stmt->joins[1].left_table, 0);
  EXPECT_EQ(stmt->joins[1].right_table, 2);
}

TEST(ParserTest, CommaCrossJoin) {
  auto stmt = ParseSelect("SELECT a.x FROM a, b");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->tables.size(), 2u);
  EXPECT_TRUE(stmt->joins.empty());
}

TEST(ParserTest, GroupByWithAggregates) {
  auto stmt = ParseSelect(
      "SELECT customers.region, SUM(orders.amount), COUNT(*) "
      "FROM orders JOIN customers ON orders.customer_id = customers.id "
      "GROUP BY customers.region ORDER BY customers.region");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->has_grouping());
  ASSERT_EQ(stmt->group_by.size(), 1u);
  EXPECT_EQ(stmt->group_by[0].column, "region");
  ASSERT_EQ(stmt->aggregates.size(), 2u);
  EXPECT_EQ(stmt->aggregates[0].fn, Aggregate::Fn::kSum);
  EXPECT_EQ(stmt->aggregates[1].fn, Aggregate::Fn::kCount);
  ASSERT_EQ(stmt->order_by.size(), 1u);
  // Grouping queries do not keep plain projections around.
  EXPECT_TRUE(stmt->projections.empty());
}

TEST(ParserTest, ImplicitGroupByFromSelectList) {
  // SELECT cat, COUNT(*) FROM t — the plain column becomes the group key.
  auto stmt = ParseSelect("SELECT cat, COUNT(*) FROM t");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->group_by.size(), 1u);
  EXPECT_EQ(stmt->group_by[0].column, "cat");
  EXPECT_EQ(stmt->aggregates.size(), 1u);
}

TEST(ParserTest, GlobalAggregate) {
  auto stmt = ParseSelect("SELECT MIN(v), MAX(v), AVG(v) FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->group_by.empty());
  EXPECT_EQ(stmt->aggregates.size(), 3u);
}

TEST(ParserTest, OrderByDescAndLimit) {
  auto stmt = ParseSelect(
      "SELECT a, b FROM t ORDER BY a DESC, b ASC LIMIT 10");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->order_by.size(), 2u);
  EXPECT_TRUE(stmt->order_by[0].descending);
  EXPECT_FALSE(stmt->order_by[1].descending);
  EXPECT_EQ(stmt->limit, 10);
}

TEST(ParserTest, LimitRequiresInteger) {
  EXPECT_FALSE(ParseSelect("SELECT * FROM t LIMIT x").ok());
}

TEST(ParserTest, SyntaxErrorsCarryPositions) {
  for (const char* bad :
       {"SELECT", "SELECT * FROM", "SELECT * WHERE x = 1",
        "SELECT * FROM t WHERE x", "SELECT * FROM t WHERE x ==",
        "SELECT * FROM t GROUP x", "SELECT * FROM t extra stuff",
        "SELECT f( FROM t", "SELECT * FROM a JOIN b"}) {
    auto stmt = ParseSelect(bad);
    EXPECT_FALSE(stmt.ok()) << bad;
    EXPECT_NE(stmt.status().message().find("position"), std::string::npos)
        << bad << " -> " << stmt.status().ToString();
  }
}

TEST(ParserTest, UnqualifiedColumnRejectedWithJoins) {
  auto stmt =
      ParseSelect("SELECT id FROM a JOIN b ON a.x = b.y");
  EXPECT_FALSE(stmt.ok());
  EXPECT_NE(stmt.status().message().find("qualified"), std::string::npos);
}

TEST(ParserTest, UnknownQualifierRejected) {
  auto stmt = ParseSelect("SELECT zz.id FROM a");
  EXPECT_FALSE(stmt.ok());
  EXPECT_NE(stmt.status().message().find("unknown table"),
            std::string::npos);
}

// ------------------------------------------------- Parse + execute e2e

TEST(ParserEndToEndTest, SqlTextThroughTheEngine) {
  Database db;
  Table t("items", Schema({{"id", ValueType::kInt},
                           {"cat", ValueType::kString},
                           {"price", ValueType::kDouble}}));
  t.AppendUnchecked({Value(int64_t{1}), Value(std::string("a")), Value(10.0)});
  t.AppendUnchecked({Value(int64_t{2}), Value(std::string("b")), Value(20.0)});
  t.AppendUnchecked({Value(int64_t{3}), Value(std::string("a")), Value(30.0)});
  ASSERT_TRUE(db.CreateTable(std::move(t)).ok());

  auto stmt = ParseSelect(
      "SELECT cat, SUM(price) FROM items WHERE price > 15 "
      "GROUP BY cat ORDER BY cat");
  ASSERT_TRUE(stmt.ok());
  auto result = ExecuteStatement(db, *stmt);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->table.num_rows(), 2);
  EXPECT_EQ(result->table.row(0)[0].AsString(), "a");
  EXPECT_DOUBLE_EQ(result->table.row(0)[1].AsDouble(), 30.0);
  EXPECT_EQ(result->table.row(1)[0].AsString(), "b");
  EXPECT_DOUBLE_EQ(result->table.row(1)[1].AsDouble(), 20.0);
}

TEST(ParserEndToEndTest, DescLimitThroughTheEngine) {
  Database db;
  Table t("nums", Schema({{"v", ValueType::kInt}}));
  for (int i = 0; i < 10; ++i) t.AppendUnchecked({Value(int64_t{i})});
  ASSERT_TRUE(db.CreateTable(std::move(t)).ok());
  auto stmt = ParseSelect("SELECT v FROM nums ORDER BY v DESC LIMIT 3");
  ASSERT_TRUE(stmt.ok());
  auto result = ExecuteStatement(db, *stmt);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->table.num_rows(), 3);
  EXPECT_EQ(result->table.row(0)[0].AsInt(), 9);
  EXPECT_EQ(result->table.row(2)[0].AsInt(), 7);
}

TEST(ParserEndToEndTest, JoinSqlMatchesBuilder) {
  Database db;
  Table orders("orders", Schema({{"id", ValueType::kInt},
                                 {"cid", ValueType::kInt}}));
  orders.AppendUnchecked({Value(int64_t{1}), Value(int64_t{10})});
  orders.AppendUnchecked({Value(int64_t{2}), Value(int64_t{20})});
  ASSERT_TRUE(db.CreateTable(std::move(orders)).ok());
  Table customers("customers", Schema({{"id", ValueType::kInt},
                                       {"name", ValueType::kString}}));
  customers.AppendUnchecked({Value(int64_t{10}), Value(std::string("x"))});
  ASSERT_TRUE(db.CreateTable(std::move(customers)).ok());

  auto parsed = ParseSelect(
      "SELECT customers.name FROM orders JOIN customers "
      "ON orders.cid = customers.id");
  ASSERT_TRUE(parsed.ok());
  auto via_sql = ExecuteStatement(db, *parsed);
  ASSERT_TRUE(via_sql.ok());

  SelectStatement built = StatementBuilder()
                              .From("orders")
                              .From("customers")
                              .Join(0, "cid", 1, "id")
                              .Select(1, "name")
                              .Build();
  auto via_builder = ExecuteStatement(db, built);
  ASSERT_TRUE(via_builder.ok());
  EXPECT_EQ(via_sql->table.num_rows(), via_builder->table.num_rows());
  EXPECT_EQ(via_sql->signature, via_builder->signature);
}

}  // namespace
}  // namespace qa::dbms
