#include <set>

#include <gtest/gtest.h>

#include "util/mathutil.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/table_writer.h"
#include "util/vtime.h"

namespace qa::util {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("no such table");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no such table");
  EXPECT_EQ(s.ToString(), "NotFound: no such table");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::Internal("boom"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_EQ(result.value_or(7), 7);
}

Status FailThenPropagate() {
  QA_RETURN_IF_ERROR(Status::InvalidArgument("inner"));
  return Status::Internal("unreachable");
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  Status s = FailThenPropagate();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "inner");
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  bool any_diff = false;
  for (int i = 0; i < 20; ++i) {
    if (a.UniformInt(0, 1 << 30) != b.UniformInt(0, 1 << 30)) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformRealStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformReal(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(100.0);
  EXPECT_NEAR(sum / n, 100.0, 5.0);
}

TEST(RngTest, ZipfRankOneMostFrequent) {
  Rng rng(13);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 20000; ++i) {
    int64_t r = rng.Zipf(10, 1.0);
    ASSERT_GE(r, 1);
    ASSERT_LE(r, 10);
    ++counts[static_cast<size_t>(r)];
  }
  // With a = 1 rank 1 should be roughly twice as frequent as rank 2 and
  // strictly the most frequent.
  for (int r = 2; r <= 10; ++r) EXPECT_GT(counts[1], counts[static_cast<size_t>(r)]);
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[2], 2.0, 0.4);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(17);
  std::vector<int> perm = rng.Permutation(50);
  std::set<int> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 49);
}

TEST(RngTest, SampleDistinctAndBounded) {
  Rng rng(19);
  std::vector<int> sample = rng.Sample(100, 10);
  std::set<int> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 10u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(23);
  Rng fork = a.Fork();
  // The fork must be deterministic given the parent's state...
  Rng b(23);
  Rng fork2 = b.Fork();
  EXPECT_EQ(fork.UniformInt(0, 1 << 30), fork2.UniformInt(0, 1 << 30));
}

// ------------------------------------------------------------------ Time

TEST(VTimeTest, ConversionsRoundTrip) {
  EXPECT_EQ(FromMillis(1.0), kMillisecond);
  EXPECT_EQ(FromSeconds(1.0), kSecond);
  EXPECT_DOUBLE_EQ(ToMillis(kSecond), 1000.0);
  EXPECT_DOUBLE_EQ(ToSeconds(500 * kMillisecond), 0.5);
}

TEST(VTimeTest, FormatTime) {
  EXPECT_EQ(FormatTime(1500 * kMillisecond), "1500.000ms");
  EXPECT_EQ(FormatTime(1234), "1.234ms");
}

// ------------------------------------------------------------- MathUtil

TEST(MathUtilTest, MeanAndStdDev) {
  std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(StdDev(xs), 2.0);
}

TEST(MathUtilTest, EmptyVectorsAreZero) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(StdDev({}), 0.0);
  EXPECT_EQ(Percentile({}, 50), 0.0);
  EXPECT_EQ(Sum({}), 0.0);
}

TEST(MathUtilTest, PercentileInterpolates) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 2.5);
}

TEST(MathUtilTest, RelDiff) {
  EXPECT_DOUBLE_EQ(RelDiff(100.0, 110.0), 10.0 / 110.0);
  EXPECT_DOUBLE_EQ(RelDiff(0.0, 0.0), 0.0);
}

// --------------------------------------------------------- TableWriter

TEST(TableWriterTest, AlignedOutputContainsCells) {
  TableWriter writer({"name", "value"});
  writer.BeginRow();
  writer.AddCell("alpha");
  writer.AddCell(3.14159, 2);
  std::ostringstream os;
  writer.Print(os);
  std::string text = os.str();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("3.14"), std::string::npos);
  EXPECT_NE(text.find("| name"), std::string::npos);
  EXPECT_EQ(writer.num_rows(), 1u);
}

TEST(TableWriterTest, AddRowVariadic) {
  TableWriter writer({"a", "b", "c"});
  writer.AddRow("x", int64_t{1}, 2.5);
  ASSERT_EQ(writer.num_rows(), 1u);
  EXPECT_EQ(writer.rows()[0][0], "x");
  EXPECT_EQ(writer.rows()[0][1], "1");
  EXPECT_EQ(writer.rows()[0][2], "2.50");
}

TEST(TableWriterTest, CsvQuotesCommas) {
  TableWriter writer({"a", "b"});
  writer.BeginRow();
  writer.AddCell("x,y");
  writer.AddCell(int64_t{7});
  std::ostringstream os;
  writer.PrintCsv(os);
  EXPECT_NE(os.str().find("\"x,y\",7"), std::string::npos);
}

}  // namespace
}  // namespace qa::util
