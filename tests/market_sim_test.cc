#include <gtest/gtest.h>

#include "market/market_sim.h"
#include "market/pareto.h"
#include "market/tatonnement.h"
#include "query/cost_model.h"
#include "util/vtime.h"

namespace qa::market {
namespace {

using util::kMillisecond;

/// Fig. 1's two-node, two-class cost matrix.
std::unique_ptr<query::MatrixCostModel> Fig1Model() {
  auto model = std::make_unique<query::MatrixCostModel>(2, 2);
  model->SetCost(0, 0, 400 * kMillisecond);
  model->SetCost(1, 0, 100 * kMillisecond);
  model->SetCost(0, 1, 450 * kMillisecond);
  model->SetCost(1, 1, 500 * kMillisecond);
  return model;
}

TEST(MarketSimTest, UnderloadedMarketServesAllDemand) {
  auto model = Fig1Model();
  MarketSimConfig config;
  config.period = 1000 * kMillisecond;
  MarketSimulator sim(model.get(), config);

  // Small demand well within capacity.
  std::vector<QuantityVector> demand = {QuantityVector({1, 2}),
                                        QuantityVector({0, 0})};
  MarketSimulator::PeriodResult result = sim.RunPeriod(demand);
  EXPECT_EQ(result.aggregate_consumption.Total(), 3);
  EXPECT_TRUE(result.unserved.IsZero());
}

TEST(MarketSimTest, SupplyEqualsConsumptionEveryPeriod) {
  auto model = Fig1Model();
  MarketSimConfig config;
  config.period = 1000 * kMillisecond;
  MarketSimulator sim(model.get(), config);
  std::vector<QuantityVector> demand = {QuantityVector({2, 3}),
                                        QuantityVector({1, 1})};
  for (int t = 0; t < 10; ++t) {
    MarketSimulator::PeriodResult result = sim.RunPeriod(demand);
    // Eq. (3): aggregate supply == aggregate consumption <= demand.
    EXPECT_EQ(Aggregate(result.supplies), result.aggregate_consumption);
    EXPECT_TRUE(result.aggregate_consumption.ComponentwiseLeq(
        result.aggregate_demand));
  }
}

TEST(MarketSimTest, UnservedQueriesRollOver) {
  auto model = Fig1Model();
  MarketSimConfig config;
  config.period = 500 * kMillisecond;
  MarketSimulator sim(model.get(), config);
  // Overwhelm the q1 capacity in one burst; leftovers must persist.
  std::vector<QuantityVector> burst = {QuantityVector({20, 0}),
                                       QuantityVector({0, 0})};
  MarketSimulator::PeriodResult r1 = sim.RunPeriod(burst);
  EXPECT_GT(r1.unserved.Total(), 0);
  std::vector<QuantityVector> nothing = {QuantityVector(2),
                                         QuantityVector(2)};
  MarketSimulator::PeriodResult r2 = sim.RunPeriod(nothing);
  // Demand in period 2 is exactly period 1's leftovers.
  EXPECT_EQ(r2.aggregate_demand, r1.unserved);
}

TEST(MarketSimTest, Proposition31ExcessDemandVanishes) {
  // Steady feasible demand: limt z(p) = 0 in the long-run trading sense —
  // the backlog of unserved queries must stay bounded (every injected
  // query is eventually served), even though the integer-valued supply
  // vectors make individual periods oscillate around equilibrium.
  auto model = Fig1Model();
  MarketSimConfig config;
  config.period = 1000 * kMillisecond;
  config.agent.lambda = 0.1;
  MarketSimulator sim(model.get(), config);

  // Demand (2, 6) per period is well within capacity: N1 can serve the six
  // q2 (600 ms) and N2 the two q1 (900 ms).
  std::vector<QuantityVector> demand = {QuantityVector({1, 6}),
                                        QuantityVector({1, 0})};
  const int periods = 60;
  Quantity injected = 0;
  Quantity consumed = 0;
  Quantity max_backlog = 0;
  for (int t = 0; t < periods; ++t) {
    MarketSimulator::PeriodResult r = sim.RunPeriod(demand);
    injected += Aggregate(demand).Total();
    consumed += r.aggregate_consumption.Total();
    max_backlog = std::max(max_backlog, r.unserved.Total());
  }
  // Nearly everything injected is served, and the rolling backlog never
  // exceeds a couple of periods' worth of demand (bounded, not divergent).
  EXPECT_GE(consumed, injected - 3 * Aggregate(demand).Total());
  EXPECT_LE(max_backlog, 3 * Aggregate(demand).Total());
}

TEST(MarketSimTest, EquilibriumAllocationIsParetoOptimal) {
  // The First Theorem of Welfare Economics, checked constructively: compute
  // the market equilibrium with the tatonnement reference process, build
  // the corresponding solution, and verify it is Pareto optimal via the
  // exhaustive oracle. (Disequilibrium *trading* periods need not be
  // optimal -- FTWE speaks about equilibrium allocations.)
  CapacitySupplySet n1({400 * kMillisecond, 100 * kMillisecond},
                       1000 * kMillisecond);
  CapacitySupplySet n2({450 * kMillisecond, 500 * kMillisecond},
                       1000 * kMillisecond);
  std::vector<const SupplySet*> sets{&n1, &n2};
  std::vector<QuantityVector> demands = {QuantityVector({4, 0}),
                                         QuantityVector({0, 2})};

  TatonnementConfig config;
  config.lambda = 0.02;
  config.max_iterations = 20000;
  TatonnementResult eq = RunTatonnement(Aggregate(demands), sets, config);
  ASSERT_TRUE(eq.converged);

  Solution solution;
  solution.supplies = eq.supplies;
  // The market cleared (z = 0), so every node consumes exactly its demand.
  solution.consumptions = demands;
  ASSERT_TRUE(IsFeasible(solution, demands, sets));
  EXPECT_TRUE(IsParetoOptimal(solution, demands, sets));
}

TEST(MarketSimTest, SteadyStatePeriodsFeasibleAndMarketClears) {
  // The trading loop itself: every period's allocation must respect the
  // (strict, un-banked) supply sets, and over a long horizon the market
  // serves essentially everything injected.
  auto model = Fig1Model();
  MarketSimConfig config;
  config.period = 1000 * kMillisecond;
  config.agent.lambda = 0.05;
  config.agent.bank_leftover_capacity = false;
  MarketSimulator sim(model.get(), config);
  std::vector<QuantityVector> demand = {QuantityVector({1, 5}),
                                        QuantityVector({1, 0})};

  CapacitySupplySet n1({400 * kMillisecond, 100 * kMillisecond},
                       1000 * kMillisecond);
  CapacitySupplySet n2({450 * kMillisecond, 500 * kMillisecond},
                       1000 * kMillisecond);
  std::vector<const SupplySet*> sets{&n1, &n2};

  Quantity injected = 0;
  Quantity consumed = 0;
  const int periods = 80;
  for (int t = 0; t < periods; ++t) {
    MarketSimulator::PeriodResult r = sim.RunPeriod(demand);
    injected += Aggregate(demand).Total();
    consumed += r.aggregate_consumption.Total();
    Solution solution;
    solution.supplies = r.supplies;
    solution.consumptions = r.consumptions;
    ASSERT_TRUE(IsFeasible(solution, r.demands, sets)) << "period " << t;
  }
  EXPECT_GE(static_cast<double>(consumed),
            0.95 * static_cast<double>(injected));
}

TEST(MarketSimTest, PricesOfScarceClassRise) {
  auto model = Fig1Model();
  MarketSimConfig config;
  config.period = 500 * kMillisecond;
  MarketSimulator sim(model.get(), config);
  // q1 demanded far beyond capacity, q2 idle.
  std::vector<QuantityVector> demand = {QuantityVector({10, 0}),
                                        QuantityVector({0, 0})};
  for (int t = 0; t < 20; ++t) sim.RunPeriod(demand);
  for (int n = 0; n < 2; ++n) {
    EXPECT_GT(sim.agent(n).prices()[0], sim.agent(n).prices()[1])
        << "node " << n;
  }
}

TEST(MarketSimTest, InfeasibleClassNeverConsumed) {
  auto model = std::make_unique<query::MatrixCostModel>(2, 2);
  model->SetCost(0, 0, 100 * kMillisecond);
  model->SetCost(0, 1, 100 * kMillisecond);
  // Class 1 evaluable nowhere.
  MarketSimConfig config;
  MarketSimulator sim(model.get(), config);
  std::vector<QuantityVector> demand = {QuantityVector({1, 3}),
                                        QuantityVector({0, 0})};
  MarketSimulator::PeriodResult result = sim.RunPeriod(demand);
  EXPECT_EQ(result.aggregate_consumption[1], 0);
  EXPECT_EQ(result.unserved[1], 3);
}

TEST(MarketSimTest, ThroughputMaximizedUnderOverload) {
  // Under heavy symmetric overload, the market should keep every node busy
  // with its densest class: N1 all q2, N2 all q1 (the QA story of Fig. 1).
  auto model = Fig1Model();
  MarketSimConfig config;
  config.period = 1000 * kMillisecond;
  config.agent.lambda = 0.05;
  MarketSimulator sim(model.get(), config);
  std::vector<QuantityVector> demand = {QuantityVector({3, 12}),
                                        QuantityVector({3, 0})};
  QuantityVector consumed(2);
  int periods = 40;
  for (int t = 0; t < periods; ++t) {
    // Top up demand to keep the market saturated without queue blowup.
    MarketSimulator::PeriodResult r = sim.RunPeriod(
        {QuantityVector({1, 4}), QuantityVector({1, 0})});
    consumed += r.aggregate_consumption;
  }
  // Upper bound per period: N1 runs 10 q2/s, N2 runs 2 q1/s (1000 ms).
  // The market should get close to ~5-6 q2 + 2 q1 per period given demand.
  double per_period = static_cast<double>(consumed.Total()) / periods;
  EXPECT_GT(per_period, 5.0);
}

}  // namespace
}  // namespace qa::market
