#include <gtest/gtest.h>

#include "market/vectors.h"

namespace qa::market {
namespace {

TEST(QuantityVectorTest, ZeroInitialized) {
  QuantityVector v(3);
  EXPECT_EQ(v.num_classes(), 3);
  EXPECT_TRUE(v.IsZero());
  EXPECT_EQ(v.Total(), 0);
}

TEST(QuantityVectorTest, TotalSumsComponents) {
  QuantityVector v({1, 6});
  EXPECT_EQ(v.Total(), 7);
  EXPECT_FALSE(v.IsZero());
}

TEST(QuantityVectorTest, Arithmetic) {
  QuantityVector a({1, 2});
  QuantityVector b({3, 4});
  EXPECT_EQ((a + b).values(), (std::vector<Quantity>{4, 6}));
  EXPECT_EQ((b - a).values(), (std::vector<Quantity>{2, 2}));
  a += b;
  EXPECT_EQ(a.values(), (std::vector<Quantity>{4, 6}));
}

TEST(QuantityVectorTest, ComponentwiseLeq) {
  QuantityVector small({1, 2});
  QuantityVector big({2, 2});
  EXPECT_TRUE(small.ComponentwiseLeq(big));
  EXPECT_FALSE(big.ComponentwiseLeq(small));
  EXPECT_TRUE(small.ComponentwiseLeq(small));
  // Incomparable pair.
  QuantityVector other({0, 5});
  EXPECT_FALSE(other.ComponentwiseLeq(small));
  EXPECT_FALSE(small.ComponentwiseLeq(other));
}

TEST(QuantityVectorTest, EqualityAndToString) {
  QuantityVector a({1, 6});
  QuantityVector b({1, 6});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.ToString(), "(1, 6)");
}

TEST(AggregateTest, SumsPerNodeVectors) {
  // Paper's Fig. 2 example: d1 = (1, 6), d2 = (1, 0) => d = (2, 6).
  QuantityVector d1({1, 6});
  QuantityVector d2({1, 0});
  QuantityVector d = Aggregate({d1, d2});
  EXPECT_EQ(d, QuantityVector({2, 6}));
}

TEST(PriceVectorTest, InitialPrice) {
  PriceVector p(3, 2.5);
  EXPECT_EQ(p.num_classes(), 3);
  EXPECT_DOUBLE_EQ(p[1], 2.5);
}

TEST(PriceVectorTest, ClampFloor) {
  PriceVector p({0.5, -1.0, 2.0});
  p.ClampFloor(1e-3);
  EXPECT_DOUBLE_EQ(p[0], 0.5);
  EXPECT_DOUBLE_EQ(p[1], 1e-3);
  EXPECT_DOUBLE_EQ(p[2], 2.0);
}

TEST(DotTest, ValueOfConsumptionVector) {
  PriceVector p({2.0, 0.5});
  QuantityVector c({3, 4});
  EXPECT_DOUBLE_EQ(Dot(p, c), 8.0);
}

TEST(ExcessDemandTest, Definition2) {
  QuantityVector demand({5, 3});
  QuantityVector supply({3, 4});
  QuantityVector z = ExcessDemand(demand, supply);
  EXPECT_EQ(z[0], 2);   // under-supplied => positive excess demand
  EXPECT_EQ(z[1], -1);  // over-supplied => negative
}

}  // namespace
}  // namespace qa::market
