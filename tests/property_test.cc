#include <gtest/gtest.h>

#include "market/market_sim.h"
#include "market/pareto.h"
#include "market/qa_nt.h"
#include "market/tatonnement.h"
#include "query/cost_model.h"
#include "util/rng.h"

namespace qa::market {
namespace {

using util::kMillisecond;

/// Randomized small-market sweeps: each parameter value seeds a different
/// instance, every invariant must hold on all of them.
class RandomMarketTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    util::Rng rng(static_cast<uint64_t>(GetParam()) * 977 + 13);
    num_classes_ = static_cast<int>(rng.UniformInt(1, 3));
    num_nodes_ = static_cast<int>(rng.UniformInt(1, 4));
    model_ = std::make_unique<query::MatrixCostModel>(num_classes_,
                                                      num_nodes_);
    // Each node can evaluate each class with probability 0.7; ensure every
    // class has at least one evaluator.
    for (int k = 0; k < num_classes_; ++k) {
      int guaranteed =
          static_cast<int>(rng.UniformInt(0, num_nodes_ - 1));
      for (int j = 0; j < num_nodes_; ++j) {
        if (j == guaranteed || rng.Bernoulli(0.7)) {
          model_->SetCost(k, j,
                          rng.UniformInt(50, 900) * kMillisecond);
        }
      }
    }
    rng_ = std::make_unique<util::Rng>(rng.Fork());
  }

  int num_classes_ = 0;
  int num_nodes_ = 0;
  std::unique_ptr<query::MatrixCostModel> model_;
  std::unique_ptr<util::Rng> rng_;
};

TEST_P(RandomMarketTest, EveryPeriodSatisfiesMarketIdentities) {
  MarketSimConfig config;
  config.period = 1000 * kMillisecond;
  MarketSimulator sim(model_.get(), config);
  for (int t = 0; t < 15; ++t) {
    std::vector<QuantityVector> demand;
    for (int i = 0; i < num_nodes_; ++i) {
      QuantityVector d(num_classes_);
      for (int k = 0; k < num_classes_; ++k) {
        d[k] = rng_->UniformInt(0, 4);
      }
      demand.push_back(std::move(d));
    }
    MarketSimulator::PeriodResult r = sim.RunPeriod(demand);
    // Eq. (3): aggregate supply == aggregate consumption <= demand.
    EXPECT_EQ(Aggregate(r.supplies), r.aggregate_consumption);
    EXPECT_TRUE(
        r.aggregate_consumption.ComponentwiseLeq(r.aggregate_demand));
    // Per node: consumption never exceeds that node's demand.
    for (int i = 0; i < num_nodes_; ++i) {
      EXPECT_TRUE(r.consumptions[static_cast<size_t>(i)].ComponentwiseLeq(
          r.demands[static_cast<size_t>(i)]));
    }
    // Nothing negative anywhere.
    for (const QuantityVector& v : r.supplies) {
      for (int k = 0; k < num_classes_; ++k) EXPECT_GE(v[k], 0);
    }
    // Prices stay positive on every agent.
    for (int i = 0; i < num_nodes_; ++i) {
      for (int k = 0; k < num_classes_; ++k) {
        EXPECT_GT(sim.agent(i).prices()[k], 0.0);
      }
    }
  }
}

TEST_P(RandomMarketTest, InfeasibleClassesNeverSupplied) {
  MarketSimConfig config;
  MarketSimulator sim(model_.get(), config);
  std::vector<QuantityVector> demand(
      static_cast<size_t>(num_nodes_), QuantityVector(num_classes_));
  for (int k = 0; k < num_classes_; ++k) demand[0][k] = 3;
  for (int t = 0; t < 5; ++t) {
    MarketSimulator::PeriodResult r = sim.RunPeriod(demand);
    for (int j = 0; j < num_nodes_; ++j) {
      for (int k = 0; k < num_classes_; ++k) {
        if (!model_->CanEvaluate(k, j)) {
          EXPECT_EQ(r.supplies[static_cast<size_t>(j)][k], 0);
        }
      }
    }
  }
}

TEST_P(RandomMarketTest, LongRunAcceptanceRespectsCapacity) {
  // One agent under saturation: accepted work per period converges to at
  // most the period budget (debt/banking bookkeeping cannot create
  // capacity out of thin air).
  util::VDuration period = 500 * kMillisecond;
  std::vector<util::VDuration> costs;
  for (int k = 0; k < num_classes_; ++k) {
    costs.push_back(rng_->UniformInt(100, 2500) * kMillisecond);
  }
  QaNtAgent agent(0, costs, period);
  util::VDuration accepted = 0;
  const int periods = 400;
  for (int t = 0; t < periods; ++t) {
    agent.BeginPeriod();
    // Saturate: request every class round-robin until all declined.
    bool any = true;
    while (any) {
      any = false;
      for (int k = 0; k < num_classes_; ++k) {
        if (agent.OnRequest(k)) {
          agent.OnOfferAccepted(k);
          accepted += costs[static_cast<size_t>(k)];
          any = true;
        }
      }
    }
    agent.EndPeriod();
  }
  double utilization = static_cast<double>(accepted) /
                       (static_cast<double>(period) * periods);
  // At most 100% capacity plus a small slack for the final period's
  // overshoot; and saturation should achieve most of the capacity.
  EXPECT_LE(utilization, 1.02 + 5.0 / periods);
  EXPECT_GE(utilization, 0.7);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomMarketTest, ::testing::Range(0, 25));

/// Tatonnement invariants on random two-node instances.
class RandomTatonnementTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomTatonnementTest, PricesPositiveAndSupplyFeasible) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 7);
  CapacitySupplySet n1({rng.UniformInt(50, 500) * kMillisecond,
                        rng.UniformInt(50, 500) * kMillisecond},
                       1000 * kMillisecond);
  CapacitySupplySet n2({rng.UniformInt(50, 500) * kMillisecond,
                        rng.UniformInt(50, 500) * kMillisecond},
                       1000 * kMillisecond);
  std::vector<const SupplySet*> sets{&n1, &n2};
  QuantityVector demand(
      {rng.UniformInt(0, 10), rng.UniformInt(0, 10)});

  TatonnementConfig config;
  config.lambda = rng.UniformReal(0.005, 0.1);
  config.max_iterations = 2000;
  TatonnementResult r = RunTatonnement(demand, sets, config);
  for (int k = 0; k < 2; ++k) {
    EXPECT_GE(r.prices[k], config.price_floor);
  }
  ASSERT_EQ(r.supplies.size(), 2u);
  EXPECT_TRUE(n1.Contains(r.supplies[0]));
  EXPECT_TRUE(n2.Contains(r.supplies[1]));
  // If the process converged, excess demand really is zero.
  if (r.converged) {
    EXPECT_TRUE(r.excess_demand.IsZero());
    EXPECT_EQ(r.aggregate_supply, demand);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomTatonnementTest,
                         ::testing::Range(0, 30));

/// Pareto-oracle consistency on random tiny instances.
class RandomParetoTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomParetoTest, OracleSelfConsistent) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 131 + 1);
  CapacitySupplySet s1({rng.UniformInt(1, 3), rng.UniformInt(1, 3)}, 4);
  CapacitySupplySet s2({rng.UniformInt(1, 3), rng.UniformInt(1, 3)}, 4);
  std::vector<const SupplySet*> sets{&s1, &s2};
  std::vector<QuantityVector> demands = {
      QuantityVector({rng.UniformInt(0, 2), rng.UniformInt(0, 2)}),
      QuantityVector({rng.UniformInt(0, 2), rng.UniformInt(0, 2)})};

  std::vector<Solution> all = EnumerateFeasibleSolutions(demands, sets);
  ASSERT_FALSE(all.empty());  // the all-zero solution always exists
  Quantity max_total = MaxTotalConsumption(demands, sets);

  Quantity best_seen = 0;
  int optimal_count = 0;
  for (const Solution& sol : all) {
    // Everything enumerated must be feasible.
    ASSERT_TRUE(IsFeasible(sol, demands, sets));
    Quantity total = sol.AggregateConsumption().Total();
    best_seen = std::max(best_seen, total);
    // Dominance is irreflexive.
    EXPECT_FALSE(ParetoDominates(sol, sol));
    if (IsParetoOptimalAmong(sol, all)) {
      ++optimal_count;
    } else if (total == max_total) {
      ADD_FAILURE() << "max-total solution dominated";
    }
  }
  // The enumeration's best total agrees with the dedicated oracle.
  EXPECT_EQ(best_seen, max_total);
  // At least one Pareto-optimal solution exists.
  EXPECT_GE(optimal_count, 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomParetoTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace qa::market
