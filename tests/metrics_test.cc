// Locks the obs/metrics subsystem: catalog/enum agreement, log-bucketed
// histogram boundary arithmetic, registry merge semantics, hand-computed
// watchdog scenarios (oscillation trip, starvation trip, non-convergence
// trip, steady-state silence, rising-edge latching), the collector's JSONL
// stream round-tripped through the same reader the tools use, and an
// end-to-end federation run proving the metrics side channel never
// perturbs simulation results. The whole file builds in both metrics
// modes; collector-stream expectations flip under -DQA_METRICS_DISABLED
// (the null-probe contract: the subsystem writes nothing at all).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "exec/experiment_runner.h"
#include "obs/metrics/catalog.h"
#include "obs/metrics/collector.h"
#include "obs/metrics/metrics_reader.h"
#include "obs/metrics/registry.h"
#include "obs/metrics/watchdog.h"
#include "obs/snapshot.h"
#include "sim/metrics_json.h"
#include "sim/scenario.h"
#include "util/rng.h"
#include "workload/sinusoid.h"

namespace qa::obs::metrics {
namespace {

using util::kMillisecond;
using util::kSecond;

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

TEST(CatalogTest, EnumAndTableAgree) {
  ASSERT_EQ(Catalog().size(), static_cast<size_t>(kMetricCount));
  // Every name resolves back to its own dense id (the enum order IS the
  // table order).
  for (size_t i = 0; i < Catalog().size(); ++i) {
    EXPECT_EQ(MetricId(Catalog()[i].name), static_cast<int>(i))
        << Catalog()[i].name;
    EXPECT_FALSE(std::string(Catalog()[i].help).empty());
  }
  // Deliberately unregistered name: the negative-lookup case.
  // qa-lint: allow(QA-OBS-003)
  EXPECT_EQ(MetricId("qa_not_a_metric"), -1);
}

TEST(CatalogTest, NamesAreUniqueAndKindsAreGrouped) {
  std::set<std::string_view> names;
  for (const MetricDef& def : Catalog()) names.insert(def.name);
  EXPECT_EQ(names.size(), Catalog().size());
  // The dense layout the hot paths rely on: counters, then gauges, then
  // the phase histograms.
  for (int id = 0; id < kMetricCount; ++id) {
    Kind expect = id < kLogPriceVariance  ? Kind::kCounter
                  : id < kPhaseRunTotal   ? Kind::kGauge
                                          : Kind::kHistogram;
    EXPECT_EQ(Catalog()[static_cast<size_t>(id)].kind, expect) << id;
  }
}

TEST(CatalogTest, PhaseMetricMapsEveryPhaseOntoItsHistogram) {
  EXPECT_EQ(Collector::PhaseMetric(Phase::kRunTotal), kPhaseRunTotal);
  EXPECT_EQ(Collector::PhaseMetric(Phase::kLaneDrain), kPhaseLaneDrain);
  EXPECT_EQ(Collector::PhaseMetric(Phase::kBidScan), kPhaseBidScan);
  EXPECT_EQ(Collector::PhaseMetric(Phase::kMediatorDispatch),
            kPhaseMediatorDispatch);
}

// ---------------------------------------------------------------------------
// Histogram buckets
// ---------------------------------------------------------------------------

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 catches zero and negatives.
  EXPECT_EQ(Histogram::BucketOf(0), 0);
  EXPECT_EQ(Histogram::BucketOf(-17), 0);
  // Bucket b >= 1 holds [2^(b-1), 2^b - 1]: hand-checked low buckets.
  EXPECT_EQ(Histogram::BucketOf(1), 1);
  EXPECT_EQ(Histogram::BucketOf(2), 2);
  EXPECT_EQ(Histogram::BucketOf(3), 2);
  EXPECT_EQ(Histogram::BucketOf(4), 3);
  EXPECT_EQ(Histogram::BucketOf(7), 3);
  EXPECT_EQ(Histogram::BucketOf(8), 4);
  EXPECT_EQ(Histogram::BucketOf(1023), 10);
  EXPECT_EQ(Histogram::BucketOf(1024), 11);
  // The top bucket absorbs everything past 2^46.
  EXPECT_EQ(Histogram::BucketOf(int64_t{1} << 46), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::BucketOf(INT64_MAX), Histogram::kBuckets - 1);
}

TEST(HistogramTest, BoundsRoundTripThroughBucketOf) {
  EXPECT_EQ(Histogram::BucketLowerBound(0), 0);
  for (int b = 1; b < Histogram::kBuckets - 1; ++b) {
    EXPECT_EQ(Histogram::BucketLowerBound(b), int64_t{1} << (b - 1)) << b;
    EXPECT_EQ(Histogram::BucketUpperBound(b), (int64_t{1} << b) - 1) << b;
    // Both edges of every bucket land back in that bucket.
    EXPECT_EQ(Histogram::BucketOf(Histogram::BucketLowerBound(b)), b);
    EXPECT_EQ(Histogram::BucketOf(Histogram::BucketUpperBound(b)), b);
  }
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kBuckets - 1), INT64_MAX);
}

TEST(HistogramTest, RecordTracksCountSumMinMaxMean) {
  Histogram h;
  h.Record(5);
  h.Record(1);
  h.Record(6);
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum, 12);
  EXPECT_EQ(h.min, 1);
  EXPECT_EQ(h.max, 6);
  EXPECT_DOUBLE_EQ(h.Mean(), 4.0);
  EXPECT_EQ(h.buckets[1], 1u);  // 1
  EXPECT_EQ(h.buckets[3], 2u);  // 5 and 6
}

TEST(HistogramTest, MergeFoldsBucketsAndExtremes) {
  Histogram a, b;
  a.Record(3);
  b.Record(100);
  b.Record(1);
  a.MergeFrom(b);
  EXPECT_EQ(a.count, 3u);
  EXPECT_EQ(a.sum, 104);
  EXPECT_EQ(a.min, 1);
  EXPECT_EQ(a.max, 100);
  Histogram empty;
  a.MergeFrom(empty);  // merging nothing changes nothing
  EXPECT_EQ(a.count, 3u);
  EXPECT_EQ(a.min, 1);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(RegistryTest, InstrumentsAndMerge) {
  Registry a, b;
  a.Add(kMessages, 5);
  b.Add(kMessages, 7);
  b.SetGauge(kEarningsCv, 0.25);
  b.Observe(kPhaseAllocate, 1000);
  a.MergeFrom(b);
  EXPECT_EQ(a.counter(kMessages), 12);
  EXPECT_DOUBLE_EQ(a.gauge(kEarningsCv), 0.25);
  EXPECT_EQ(a.histogram(kPhaseAllocate).count, 1u);
  // A never-set gauge in the source does not wipe the destination.
  Registry c;
  c.SetGauge(kEarningsCv, 0.5);
  Registry untouched;
  c.MergeFrom(untouched);
  EXPECT_DOUBLE_EQ(c.gauge(kEarningsCv), 0.5);
}

TEST(RegistryTest, ExpositionTextCoversEveryMetricInCatalogOrder) {
  Registry r;
  r.SetCounter(kMessages, 42);
  r.SetGauge(kLogPriceVariance, 0.125);
  r.Observe(kPhaseRunTotal, 3);
  std::string text = r.ExpositionText();
  EXPECT_NE(text.find("# TYPE qa_messages_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("qa_messages_total 42"), std::string::npos);
  EXPECT_NE(text.find("qa_market_log_price_variance 0.125"),
            std::string::npos);
  EXPECT_NE(text.find("qa_phase_run_total_ns_bucket{le=\"3\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("qa_phase_run_total_ns_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("qa_phase_run_total_ns_count 1"), std::string::npos);
  // Catalog order: the first counter leads, the last histogram trails.
  size_t first = text.find("qa_events_dispatched_total");
  size_t last = text.find("qa_phase_mediator_dispatch_ns");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(last, std::string::npos);
  EXPECT_LT(first, last);
}

// ---------------------------------------------------------------------------
// Watchdogs — hand-computed scenarios
// ---------------------------------------------------------------------------

constexpr util::VTime kPeriod = 500 * kMillisecond;  // 500ms periods

/// A QA-NT-like market probe with one single-class agent per entry of
/// `prices`; `earnings` (when given) are assigned positionally.
MarketProbe Snap(const std::vector<double>& prices,
                 const std::vector<double>& earnings = {}) {
  MarketProbe probe;
  probe.num_classes = 1;
  probe.prices = prices;
  for (size_t i = 0; i < prices.size(); ++i) {
    probe.earnings.push_back(i < earnings.size() ? earnings[i] : 0.0);
  }
  return probe;
}

TEST(WatchdogTest, StarvationTripsLatchesAndRearms) {
  WatchdogSuite suite(WatchdogConfig{}, kPeriod);
  // SLA = 4 periods = 2000ms. A 2500ms sojourn is starvation.
  suite.ObserveRejectSojourn(0, 2500 * kMillisecond);
  std::vector<AlarmRecord> alarms =
      suite.EvaluatePeriod(1, 1 * kSecond, MarketProbe{});
  ASSERT_EQ(alarms.size(), 1u);
  EXPECT_EQ(alarms[0].watchdog, "starvation");
  EXPECT_EQ(alarms[0].class_id, 0);
  EXPECT_DOUBLE_EQ(alarms[0].value, 2500.0);     // ms
  EXPECT_DOUBLE_EQ(alarms[0].threshold, 2000.0);  // ms
  EXPECT_EQ(alarms[0].period, 1);
  EXPECT_DOUBLE_EQ(suite.max_reject_age_ms(), 2500.0);

  // Still starving: the latch holds, no repeat alarm.
  suite.ObserveRejectSojourn(0, 3000 * kMillisecond);
  EXPECT_TRUE(
      suite.EvaluatePeriod(2, 2 * kSecond, MarketProbe{}).empty());

  // A healthy period clears the latch...
  suite.ObserveRejectSojourn(0, 100 * kMillisecond);
  EXPECT_TRUE(
      suite.EvaluatePeriod(3, 3 * kSecond, MarketProbe{}).empty());
  EXPECT_DOUBLE_EQ(suite.max_reject_age_ms(), 100.0);

  // ...so the next episode alarms again (rising edge, once per episode).
  suite.ObserveRejectSojourn(0, 2500 * kMillisecond);
  EXPECT_EQ(
      suite.EvaluatePeriod(4, 4 * kSecond, MarketProbe{}).size(), 1u);
}

TEST(WatchdogTest, OscillationTripsAfterAFullWindow) {
  WatchdogConfig config;  // window 6, flip threshold 0.6, amplitude 0.02
  WatchdogSuite suite(config, kPeriod);
  // One agent whose price alternates 1.0 <-> 1.5: every consecutive
  // mean-ln(price) delta is +/-ln(1.5) ~= 0.405, so all 5 of 5 delta pairs
  // flip sign (rate 1.0 >= 0.6) with amplitude 0.405 >= 0.02. The detector
  // needs window+1 = 7 means before it can judge, so the alarm lands
  // exactly on the 7th evaluation.
  std::vector<AlarmRecord> all;
  for (int p = 0; p < 7; ++p) {
    double price = (p % 2 == 0) ? 1.0 : 1.5;
    std::vector<AlarmRecord> alarms =
        suite.EvaluatePeriod(p, p * kPeriod, Snap({price}));
    if (p < 6) {
      EXPECT_TRUE(alarms.empty()) << "period " << p;
    }
    all.insert(all.end(), alarms.begin(), alarms.end());
  }
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].watchdog, "oscillation");
  EXPECT_EQ(all[0].class_id, 0);
  EXPECT_DOUBLE_EQ(all[0].value, 1.0);  // flip rate
  EXPECT_DOUBLE_EQ(all[0].threshold, 0.6);
  EXPECT_DOUBLE_EQ(suite.osc_flip_rate(), 1.0);
  // The oscillation persists: latched, no second alarm.
  EXPECT_TRUE(suite.EvaluatePeriod(7, 7 * kPeriod, Snap({1.0})).empty());
}

TEST(WatchdogTest, NonConvergenceTripsWhenVarianceHoldsAboveFloor) {
  WatchdogSuite suite(WatchdogConfig{}, kPeriod);
  // Two agents stuck at prices 1.0 and 2.0: cross-node ln-price variance
  // is (ln2/2)^2 ~= 0.12 every period — above the 1e-3 floor and never
  // decreasing. After window = 6 periods the detector fires. The means
  // never move, so oscillation stays quiet.
  const double expected_var = std::pow(std::log(2.0) / 2.0, 2.0);
  std::vector<AlarmRecord> all;
  for (int p = 0; p < 6; ++p) {
    std::vector<AlarmRecord> alarms =
        suite.EvaluatePeriod(p, p * kPeriod, Snap({1.0, 2.0}));
    if (p < 5) {
      EXPECT_TRUE(alarms.empty()) << "period " << p;
    }
    all.insert(all.end(), alarms.begin(), alarms.end());
  }
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].watchdog, "nonconvergence");
  EXPECT_EQ(all[0].class_id, 0);
  EXPECT_NEAR(all[0].value, expected_var, 1e-12);
  EXPECT_DOUBLE_EQ(all[0].threshold, 1e-3);
  EXPECT_NEAR(suite.log_price_variance(), expected_var, 1e-12);
  // Latched while the market stays dispersed.
  EXPECT_TRUE(
      suite.EvaluatePeriod(6, 6 * kPeriod, Snap({1.0, 2.0})).empty());
}

TEST(WatchdogTest, SteadyStateNeverTrips) {
  WatchdogSuite suite(WatchdogConfig{}, kPeriod);
  // A settled market: every node quotes 1.3, rejects age well under the
  // SLA. Ten periods, zero alarms — and the fairness gauge reads the
  // hand-computed CV of earnings {1, 3}: mean 2, stddev 1, CV 0.5.
  for (int p = 0; p < 10; ++p) {
    suite.ObserveRejectSojourn(0, 50 * kMillisecond);
    EXPECT_TRUE(
        suite.EvaluatePeriod(p, p * kPeriod, Snap({1.3, 1.3}, {1.0, 3.0}))
            .empty())
        << "period " << p;
  }
  EXPECT_DOUBLE_EQ(suite.log_price_variance(), 0.0);
  EXPECT_DOUBLE_EQ(suite.osc_flip_rate(), 0.0);
  EXPECT_DOUBLE_EQ(suite.earnings_cv(), 0.5);
  EXPECT_DOUBLE_EQ(suite.max_reject_age_ms(), 50.0);
}

TEST(WatchdogTest, SnapshotsWithoutAgentsSkipPriceDetectors) {
  WatchdogSuite suite(WatchdogConfig{}, kPeriod);
  // Non-market mechanisms expose no agent state: only starvation can fire.
  MarketProbe bare;
  for (int p = 0; p < 10; ++p) {
    EXPECT_TRUE(suite.EvaluatePeriod(p, p * kPeriod, bare).empty());
  }
  EXPECT_DOUBLE_EQ(suite.log_price_variance(), 0.0);
  EXPECT_DOUBLE_EQ(suite.earnings_cv(), 0.0);
}

// ---------------------------------------------------------------------------
// Collector stream <-> reader round trip
// ---------------------------------------------------------------------------

#ifndef QA_METRICS_DISABLED

TEST(CollectorTest, StreamRoundTripsThroughTheReader) {
  std::ostringstream sink;
  {
    Collector collector(&sink);
    RunMeta meta;
    meta.mechanism = "QA-NT";
    meta.nodes = 8;
    meta.shards = 4;
    meta.threads = 2;
    meta.seed = 7;
    meta.period_us = kPeriod;
    collector.BeginRun(meta);
    collector.SetNumLanes(3);
    collector.RecordPhase(Phase::kAllocate, 1500);
    collector.RecordLaneDrain(1, 2000, 10);

    SampleRow row;
    row.t_us = kPeriod;
    row.period = 1;
    row.ticks = 2;
    row.events_dispatched = 100;
    row.completed = 30;
    row.messages = 40;
    row.outstanding = 5;
    row.log_price_variance = 0.25;
    collector.Sample(row);

    AlarmRecord alarm;
    alarm.t_us = kPeriod;
    alarm.period = 1;
    alarm.watchdog = "oscillation";
    alarm.class_id = 1;
    alarm.value = 0.8;
    alarm.threshold = 0.6;
    alarm.detail = "test alarm";
    collector.Alarm(alarm);

    collector.Finish();
    collector.Finish();  // idempotent: no second mstat block below
  }

  util::StatusOr<ParsedMetrics> parsed = ParsedMetrics::Parse(sink.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const ParsedMetrics& m = parsed.value();

  EXPECT_EQ(m.meta.GetString("mechanism", ""), "QA-NT");
  EXPECT_EQ(m.meta.GetInt("shards", 0), 4);
  EXPECT_EQ(m.meta.GetInt("threads", 0), 2);
  EXPECT_EQ(m.meta.GetInt("period_us", 0), kPeriod);

  ASSERT_EQ(m.samples.size(), 1u);
  EXPECT_EQ(m.samples[0].GetInt("events", 0), 100);
  EXPECT_EQ(m.samples[0].GetInt("messages", 0), 40);
  EXPECT_EQ(m.samples[0].GetInt("outstanding", 0), 5);
  EXPECT_DOUBLE_EQ(m.samples[0].GetDouble("log_price_var", 0.0), 0.25);

  ASSERT_EQ(m.alarms.size(), 1u);
  EXPECT_EQ(m.alarms[0].watchdog, "oscillation");
  EXPECT_EQ(m.alarms[0].class_id, 1);
  EXPECT_DOUBLE_EQ(m.alarms[0].value, 0.8);
  EXPECT_EQ(m.alarms[0].detail, "test alarm");

  // Exactly one mstat per catalog metric (double Finish would double it).
  ASSERT_EQ(m.stats.size(), static_cast<size_t>(kMetricCount));
  const MetricStat* messages = m.FindStat("qa_messages_total");
  ASSERT_NE(messages, nullptr);
  EXPECT_EQ(messages->value, 40);  // Sample() synced the registry
  const MetricStat* alarms_total = m.FindStat("qa_alarms_total");
  ASSERT_NE(alarms_total, nullptr);
  EXPECT_EQ(alarms_total->value, 1);
  const MetricStat* allocate = m.FindStat("qa_phase_allocate_ns");
  ASSERT_NE(allocate, nullptr);
  EXPECT_EQ(allocate->count, 1u);
  EXPECT_EQ(allocate->sum, 1500);
  EXPECT_EQ(allocate->min, 1500);
  EXPECT_EQ(allocate->max, 1500);
  EXPECT_EQ(m.FindStat("qa_not_a_metric"), nullptr);

  ASSERT_EQ(m.lane_drain_ns.size(), 3u);
  EXPECT_EQ(m.lane_drain_ns[1], 2000);
  ASSERT_EQ(m.lane_events.size(), 3u);
  EXPECT_EQ(m.lane_events[1], 10);
}

TEST(CollectorTest, PerfJsonSummarizesPhasesAndLanes) {
  Collector collector;  // collect-only
  collector.SetNumLanes(2);
  collector.RecordPhase(Phase::kRunTotal, 4000);
  collector.RecordLaneDrain(0, 1000, 4);
  collector.RecordLaneDrain(1, 3000, 12);
  Json perf = collector.PerfJson();
  // max/mean of {1000, 3000} = 3000/2000 = 1.5.
  EXPECT_DOUBLE_EQ(perf.GetDouble("lane_imbalance", 0.0), 1.5);
  const Json* phases = perf.Find("phases");
  ASSERT_NE(phases, nullptr);
  const Json* run_total = phases->Find("qa_phase_run_total_ns");
  ASSERT_NE(run_total, nullptr);
  EXPECT_EQ(run_total->GetInt("count", 0), 1);
}

TEST(MetricsReaderTest, UnknownRecordTypeIsAnError) {
  util::StatusOr<ParsedMetrics> parsed =
      ParsedMetrics::Parse("{\"type\":\"bogus\"}\n");
  EXPECT_FALSE(parsed.ok());
}

#endif  // QA_METRICS_DISABLED

// ---------------------------------------------------------------------------
// Null-probe contract (both build modes)
// ---------------------------------------------------------------------------

TEST(MetricsGateTest, NullProbeNeverRunsAndDisabledBuildWritesNothing) {
  // The QA_METRICS gate: a null collector skips the probe body entirely
  // (and under -DQA_METRICS_DISABLED the body is not even compiled — the
  // macro then never reads its argument, hence [[maybe_unused]]).
  [[maybe_unused]] Collector* null_collector = nullptr;
  bool ran = false;
  QA_METRICS(null_collector) { ran = true; }
  EXPECT_FALSE(ran);

  std::ostringstream sink;
  {
    Collector collector(&sink);
    RunMeta meta;
    meta.mechanism = "QA-NT";
    collector.BeginRun(meta);
    SampleRow row;
    row.events_dispatched = 1;
    collector.Sample(row);
    collector.Finish();
  }
#ifdef QA_METRICS_DISABLED
  // The whole subsystem compiles away: not a byte reaches the sink.
  EXPECT_TRUE(sink.str().empty());
#else
  EXPECT_FALSE(sink.str().empty());
#endif
}

// ---------------------------------------------------------------------------
// End to end: a real federation run with the collector attached
// ---------------------------------------------------------------------------

sim::SimMetrics RunSmallScenario(Collector* collector,
                                 std::string* metrics_json) {
  util::Rng rng(11);
  sim::TwoClassConfig scenario;
  scenario.num_nodes = 6;
  auto model = sim::BuildTwoClassCostModel(scenario, rng);
  workload::SinusoidConfig workload;
  workload.frequency_hz = 0.2;
  workload.duration = 6 * kSecond;
  workload.num_origin_nodes = 6;
  workload.q1_peak_rate = 6.0;
  util::Rng wl_rng(12);
  workload::Trace trace =
      workload::GenerateSinusoidWorkload(workload, wl_rng);

  exec::RunSpec spec;
  spec.cost_model = model.get();
  spec.mechanism = "QA-NT";
  spec.trace = &trace;
  spec.period = kPeriod;
  spec.seed = 11;
  spec.config.metrics = collector;
  sim::SimMetrics metrics = exec::RunSpecOnce(spec).metrics;
  *metrics_json = sim::MetricsToJson(metrics).Dump();
  return metrics;
}

TEST(MetricsEndToEndTest, CollectorNeverPerturbsTheSimulation) {
  std::string with_json, without_json;
  std::ostringstream sink;
  Collector collector(&sink);
  sim::SimMetrics with_metrics = RunSmallScenario(&collector, &with_json);
  collector.Finish();
  RunSmallScenario(nullptr, &without_json);
  // The metrics side channel reads sim state; it never feeds it.
  EXPECT_EQ(with_json, without_json);

#ifndef QA_METRICS_DISABLED
  util::StatusOr<ParsedMetrics> parsed = ParsedMetrics::Parse(sink.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const ParsedMetrics& m = parsed.value();
  // One sample per global period plus the final row; cumulative counters
  // in the last sample mirror the run's own metrics exactly.
  ASSERT_GE(m.samples.size(), 2u);
  const Json& last = m.samples.back();
  EXPECT_EQ(last.GetInt("events", -1), with_metrics.events_dispatched);
  EXPECT_EQ(last.GetInt("completed", -1), with_metrics.completed);
  EXPECT_EQ(last.GetInt("messages", -1), with_metrics.messages);
  EXPECT_EQ(last.GetInt("solicited", -1), with_metrics.solicited);
  EXPECT_EQ(last.GetInt("outstanding", -1), 0);  // Run drains everything
  // The trailing stats block is complete, and the timed phases that every
  // run passes through actually recorded wall time.
  EXPECT_EQ(m.stats.size(), static_cast<size_t>(kMetricCount));
  const MetricStat* run_total = m.FindStat("qa_phase_run_total_ns");
  ASSERT_NE(run_total, nullptr);
  EXPECT_EQ(run_total->count, 1u);
  EXPECT_GT(run_total->sum, 0);
  const MetricStat* allocate = m.FindStat("qa_phase_allocate_ns");
  ASSERT_NE(allocate, nullptr);
  EXPECT_GT(allocate->count, 0u);
  const MetricStat* ticks = m.FindStat("qa_ticks_total");
  ASSERT_NE(ticks, nullptr);
  EXPECT_GT(ticks->value, 0);
#endif
}

}  // namespace
}  // namespace qa::obs::metrics
