#include <algorithm>

#include <gtest/gtest.h>

#include "dbms/database.h"
#include "dbms/engine.h"
#include "dbms/planner.h"
#include "dbms/query_ast.h"

namespace qa::dbms {
namespace {

/// Tiny orders/customers database used across the engine tests.
class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Table customers("customers", Schema({{"id", ValueType::kInt},
                                         {"name", ValueType::kString},
                                         {"tier", ValueType::kInt}}));
    ASSERT_TRUE(customers
                    .Append({Value(int64_t{1}), Value(std::string("ann")),
                             Value(int64_t{1})})
                    .ok());
    ASSERT_TRUE(customers
                    .Append({Value(int64_t{2}), Value(std::string("bob")),
                             Value(int64_t{2})})
                    .ok());
    ASSERT_TRUE(customers
                    .Append({Value(int64_t{3}), Value(std::string("cat")),
                             Value(int64_t{2})})
                    .ok());
    ASSERT_TRUE(db_.CreateTable(std::move(customers)).ok());

    Table orders("orders", Schema({{"id", ValueType::kInt},
                                   {"customer_id", ValueType::kInt},
                                   {"amount", ValueType::kDouble}}));
    ASSERT_TRUE(orders
                    .Append({Value(int64_t{100}), Value(int64_t{1}),
                             Value(10.0)})
                    .ok());
    ASSERT_TRUE(orders
                    .Append({Value(int64_t{101}), Value(int64_t{2}),
                             Value(20.0)})
                    .ok());
    ASSERT_TRUE(orders
                    .Append({Value(int64_t{102}), Value(int64_t{2}),
                             Value(30.0)})
                    .ok());
    ASSERT_TRUE(orders
                    .Append({Value(int64_t{103}), Value(int64_t{9}),
                             Value(40.0)})
                    .ok());
    ASSERT_TRUE(db_.CreateTable(std::move(orders)).ok());
  }

  Database db_;
};

TEST_F(EngineTest, SingleTableScanAll) {
  SelectStatement stmt = StatementBuilder().From("customers").Build();
  auto result = ExecuteStatement(db_, stmt);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.num_rows(), 3);
  EXPECT_EQ(result->stats.rows_scanned, 3);
}

TEST_F(EngineTest, FilterPushdown) {
  SelectStatement stmt = StatementBuilder()
                             .From("customers")
                             .Where(0, "tier", 0, Value(int64_t{2}))
                             .Build();
  auto result = ExecuteStatement(db_, stmt);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.num_rows(), 2);
}

TEST_F(EngineTest, RangeFilter) {
  SelectStatement stmt = StatementBuilder()
                             .From("orders")
                             .Where(0, "amount", 4, Value(15.0))  // >
                             .Build();
  auto result = ExecuteStatement(db_, stmt);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.num_rows(), 3);
}

TEST_F(EngineTest, EquiJoinMatchesForeignKeys) {
  SelectStatement stmt = StatementBuilder()
                             .From("orders")
                             .From("customers")
                             .Join(0, "customer_id", 1, "id")
                             .Build();
  auto result = ExecuteStatement(db_, stmt);
  ASSERT_TRUE(result.ok());
  // Order 103 references a missing customer: 3 matches.
  EXPECT_EQ(result->table.num_rows(), 3);
  // Joined row = orders columns ++ customers columns.
  EXPECT_EQ(result->table.schema().num_columns(), 6);
}

TEST_F(EngineTest, HashAndMergeJoinAgree) {
  SelectStatement stmt = StatementBuilder()
                             .From("orders")
                             .From("customers")
                             .Join(0, "customer_id", 1, "id")
                             .Select(0, "id")
                             .Build();
  PlannerOptions hash;
  hash.use_hash_join = true;
  PlannerOptions merge;
  merge.use_hash_join = false;
  auto r_hash = ExecuteStatement(db_, stmt, hash);
  auto r_merge = ExecuteStatement(db_, stmt, merge);
  ASSERT_TRUE(r_hash.ok());
  ASSERT_TRUE(r_merge.ok());
  ASSERT_EQ(r_hash->table.num_rows(), r_merge->table.num_rows());

  auto ids = [](const Table& t) {
    std::vector<int64_t> out;
    for (const Row& r : t.rows()) out.push_back(r[0].AsInt());
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(ids(r_hash->table), ids(r_merge->table));
  // The two plans have different signatures (HJ vs MJ).
  EXPECT_NE(r_hash->signature, r_merge->signature);
}

TEST_F(EngineTest, ProjectionAndOrderBy) {
  SelectStatement stmt = StatementBuilder()
                             .From("customers")
                             .Select(0, "name")
                             .OrderBy(0, "name")
                             .Build();
  auto result = ExecuteStatement(db_, stmt);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->table.num_rows(), 3);
  EXPECT_EQ(result->table.schema().num_columns(), 1);
  EXPECT_EQ(result->table.row(0)[0].AsString(), "ann");
  EXPECT_EQ(result->table.row(2)[0].AsString(), "cat");
}

TEST_F(EngineTest, OrderByDescendingInput) {
  // Sort on amount ascending regardless of insert order.
  SelectStatement stmt = StatementBuilder()
                             .From("orders")
                             .Select(0, "amount")
                             .OrderBy(0, "amount")
                             .Build();
  auto result = ExecuteStatement(db_, stmt);
  ASSERT_TRUE(result.ok());
  for (int64_t i = 1; i < result->table.num_rows(); ++i) {
    EXPECT_LE(result->table.row(i - 1)[0].AsDouble(),
              result->table.row(i)[0].AsDouble());
  }
}

TEST_F(EngineTest, GroupByWithAggregates) {
  // SELECT customer_id, SUM(amount), COUNT(id) FROM orders GROUP BY
  // customer_id ORDER BY customer_id.
  SelectStatement stmt = StatementBuilder()
                             .From("orders")
                             .GroupBy(0, "customer_id")
                             .Agg(Aggregate::Fn::kSum, 0, "amount")
                             .Agg(Aggregate::Fn::kCount, 0, "id")
                             .OrderBy(0, "customer_id")
                             .Build();
  auto result = ExecuteStatement(db_, stmt);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->table.num_rows(), 3);  // customers 1, 2, 9
  EXPECT_EQ(result->table.row(0)[0].AsInt(), 1);
  EXPECT_DOUBLE_EQ(result->table.row(0)[1].AsDouble(), 10.0);
  EXPECT_EQ(result->table.row(1)[0].AsInt(), 2);
  EXPECT_DOUBLE_EQ(result->table.row(1)[1].AsDouble(), 50.0);
  EXPECT_EQ(result->table.row(1)[2].AsInt(), 2);
}

TEST_F(EngineTest, GlobalAggregateOverEmptyInput) {
  SelectStatement stmt = StatementBuilder()
                             .From("orders")
                             .Where(0, "amount", 4, Value(1e9))
                             .Agg(Aggregate::Fn::kCount, 0, "id")
                             .Build();
  auto result = ExecuteStatement(db_, stmt);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->table.num_rows(), 1);
  EXPECT_EQ(result->table.row(0)[0].AsInt(), 0);
}

TEST_F(EngineTest, MinMaxAvgAggregates) {
  SelectStatement stmt = StatementBuilder()
                             .From("orders")
                             .Agg(Aggregate::Fn::kMin, 0, "amount")
                             .Agg(Aggregate::Fn::kMax, 0, "amount")
                             .Agg(Aggregate::Fn::kAvg, 0, "amount")
                             .Build();
  auto result = ExecuteStatement(db_, stmt);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->table.num_rows(), 1);
  EXPECT_DOUBLE_EQ(result->table.row(0)[0].AsDouble(), 10.0);
  EXPECT_DOUBLE_EQ(result->table.row(0)[1].AsDouble(), 40.0);
  EXPECT_DOUBLE_EQ(result->table.row(0)[2].AsDouble(), 25.0);
}

TEST_F(EngineTest, ViewExpansion) {
  ViewDef view;
  view.name = "big_orders";
  view.base_table = "orders";
  view.columns = {"id", "amount"};
  view.filters.push_back({"amount", 4, Value(15.0)});  // amount > 15
  ASSERT_TRUE(db_.CreateView(view).ok());

  SelectStatement stmt = StatementBuilder().From("big_orders").Build();
  auto result = ExecuteStatement(db_, stmt);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.num_rows(), 3);
  EXPECT_EQ(result->table.schema().num_columns(), 2);
  EXPECT_EQ(result->table.schema().column(1).name, "amount");
}

TEST_F(EngineTest, FilterOnViewColumn) {
  ViewDef view;
  view.name = "v_orders";
  view.base_table = "orders";
  view.columns = {"id", "amount"};
  ASSERT_TRUE(db_.CreateView(view).ok());
  SelectStatement stmt = StatementBuilder()
                             .From("v_orders")
                             .Where(0, "amount", 2, Value(25.0))  // <
                             .Build();
  auto result = ExecuteStatement(db_, stmt);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.num_rows(), 2);
}

TEST_F(EngineTest, JoinTableWithView) {
  ViewDef view;
  view.name = "v_customers";
  view.base_table = "customers";
  view.columns = {"id", "tier"};
  ASSERT_TRUE(db_.CreateView(view).ok());
  SelectStatement stmt = StatementBuilder()
                             .From("orders")
                             .From("v_customers")
                             .Join(0, "customer_id", 1, "id")
                             .Build();
  auto result = ExecuteStatement(db_, stmt);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.num_rows(), 3);
  EXPECT_EQ(result->table.schema().num_columns(), 5);
}

TEST_F(EngineTest, CrossProductWhenNoJoinPredicate) {
  SelectStatement stmt =
      StatementBuilder().From("orders").From("customers").Build();
  auto result = ExecuteStatement(db_, stmt);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.num_rows(), 12);  // 4 x 3
  EXPECT_GT(result->stats.nested_loop_compares, 0);
}

TEST_F(EngineTest, ErrorsOnUnknownRelationAndColumn) {
  SelectStatement bad_table = StatementBuilder().From("nope").Build();
  EXPECT_FALSE(ExecuteStatement(db_, bad_table).ok());

  SelectStatement bad_column = StatementBuilder()
                                   .From("orders")
                                   .Where(0, "nope", 0, Value(int64_t{1}))
                                   .Build();
  EXPECT_FALSE(ExecuteStatement(db_, bad_column).ok());

  SelectStatement no_from;
  EXPECT_FALSE(ExecuteStatement(db_, no_from).ok());
}

TEST_F(EngineTest, ExplainReportsPlanAndEstimates) {
  Planner planner(&db_);
  SelectStatement stmt = StatementBuilder()
                             .From("orders")
                             .From("customers")
                             .Join(0, "customer_id", 1, "id")
                             .Where(0, "amount", 4, Value(15.0))
                             .Build();
  auto explained = planner.Explain(stmt);
  ASSERT_TRUE(explained.ok());
  EXPECT_NE(explained->text.find("HASH_JOIN"), std::string::npos);
  EXPECT_NE(explained->text.find("SCAN"), std::string::npos);
  EXPECT_GT(explained->estimate.io_bytes, 0.0);
  EXPECT_GT(explained->estimate.cpu_tuples, 0.0);
  // The signature contains the table names but no constants.
  EXPECT_NE(explained->signature.find("orders"), std::string::npos);
  EXPECT_EQ(explained->signature.find("15"), std::string::npos);
}

TEST_F(EngineTest, SignatureStableAcrossConstants) {
  Planner planner(&db_);
  SelectStatement a = StatementBuilder()
                          .From("orders")
                          .Where(0, "amount", 4, Value(15.0))
                          .Build();
  SelectStatement b = StatementBuilder()
                          .From("orders")
                          .Where(0, "amount", 4, Value(99.0))
                          .Build();
  auto ea = planner.Explain(a);
  auto eb = planner.Explain(b);
  ASSERT_TRUE(ea.ok());
  ASSERT_TRUE(eb.ok());
  EXPECT_EQ(ea->signature, eb->signature);
}

TEST_F(EngineTest, DatabaseCatalogOperations) {
  EXPECT_TRUE(db_.HasTable("orders"));
  EXPECT_FALSE(db_.HasTable("nope"));
  EXPECT_EQ(db_.TableNames().size(), 2u);
  EXPECT_GT(db_.TotalBytes(), 0);

  // Duplicate names rejected.
  Table dup("orders", Schema({{"x", ValueType::kInt}}));
  EXPECT_EQ(db_.CreateTable(std::move(dup)).code(),
            util::StatusCode::kAlreadyExists);

  ViewDef bad_view;
  bad_view.name = "v";
  bad_view.base_table = "missing";
  EXPECT_EQ(db_.CreateView(bad_view).code(), util::StatusCode::kNotFound);

  ViewDef bad_col;
  bad_col.name = "v";
  bad_col.base_table = "orders";
  bad_col.columns = {"nope"};
  EXPECT_EQ(db_.CreateView(bad_col).code(), util::StatusCode::kNotFound);
}

}  // namespace
}  // namespace qa::dbms
