#include <gtest/gtest.h>

#include "dbms/dataset.h"
#include "dbms/dbms_federation.h"
#include "util/rng.h"
#include "util/vtime.h"

namespace qa::dbms {
namespace {

using util::kMillisecond;

TEST(DatasetTest, BuildsTablesViewsAndPlacement) {
  DatasetConfig config;
  config.num_tables = 10;
  config.num_views = 20;
  config.num_templates = 10;
  config.min_rows = 50;
  config.max_rows = 200;
  util::Rng rng(42);
  Fig7Dataset dataset = BuildFig7Dataset(config, rng);

  ASSERT_EQ(dataset.node_dbs.size(), 5u);
  EXPECT_EQ(dataset.placement.size(), 30u);  // 10 tables + 20 views
  for (const auto& [name, holders] : dataset.placement) {
    EXPECT_GE(holders.size(), 1u);
    EXPECT_LE(holders.size(), 4u);
  }
  ASSERT_EQ(dataset.templates.size(), 10u);
  for (size_t t = 0; t < dataset.templates.size(); ++t) {
    EXPECT_FALSE(dataset.template_nodes[t].empty()) << "template " << t;
    // Star query shape: 1 fact + >= 2 dimensions, grouping + aggregates.
    EXPECT_GE(dataset.templates[t].tables.size(), 3u);
    EXPECT_TRUE(dataset.templates[t].has_grouping());
  }
}

TEST(DatasetTest, TemplatesExecutableOnEligibleNodes) {
  DatasetConfig config;
  config.num_tables = 8;
  config.num_views = 10;
  config.num_templates = 5;
  config.min_rows = 30;
  config.max_rows = 100;
  util::Rng rng(7);
  Fig7Dataset dataset = BuildFig7Dataset(config, rng);
  for (size_t t = 0; t < dataset.templates.size(); ++t) {
    SelectStatement stmt =
        InstantiateTemplate(dataset, static_cast<int>(t), config, rng);
    for (int n : dataset.template_nodes[t]) {
      auto result =
          ExecuteStatement(dataset.node_dbs[static_cast<size_t>(n)], stmt);
      EXPECT_TRUE(result.ok())
          << "template " << t << " node " << n << ": "
          << result.status().ToString();
    }
  }
}

TEST(DatasetTest, InstanceConstantsVaryWithinClass) {
  DatasetConfig config;
  config.num_tables = 8;
  config.num_views = 10;
  config.num_templates = 3;
  config.min_rows = 30;
  config.max_rows = 100;
  util::Rng rng(7);
  Fig7Dataset dataset = BuildFig7Dataset(config, rng);
  // Same template, different draws: tables identical, constants may vary.
  SelectStatement a = InstantiateTemplate(dataset, 0, config, rng);
  SelectStatement b = InstantiateTemplate(dataset, 0, config, rng);
  ASSERT_EQ(a.tables.size(), b.tables.size());
  for (size_t i = 0; i < a.tables.size(); ++i) {
    EXPECT_EQ(a.tables[i].name, b.tables[i].name);
  }
}

class DbmsFederationTest : public ::testing::Test {
 protected:
  static DbmsFederationConfig SmallConfig() {
    DbmsFederationConfig config;
    config.dataset.num_tables = 8;
    config.dataset.num_views = 12;
    config.dataset.num_templates = 8;
    config.dataset.min_rows = 50;
    config.dataset.max_rows = 150;
    config.seed = 42;
    return config;
  }
};

TEST_F(DbmsFederationTest, CalibrationHitsTargetFastestExec) {
  DbmsFederation fed(SmallConfig());
  EXPECT_GT(fed.data_scale(), 0.0);
  // Mean over templates of the fastest eligible node's static cost should
  // be near the configured cold target.
  double target = static_cast<double>(SmallConfig().target_fastest_exec);
  double sum = 0.0;
  int counted = 0;
  for (int t = 0; t < fed.num_templates(); ++t) {
    util::VDuration best = 0;
    for (int n = 0; n < fed.num_nodes(); ++n) {
      util::VDuration c = fed.TemplateCost(t, n);
      if (c > 0 && (best == 0 || c < best)) best = c;
    }
    if (best > 0) {
      sum += static_cast<double>(best);
      ++counted;
    }
  }
  ASSERT_GT(counted, 0);
  EXPECT_NEAR(sum / counted, target, target * 0.1);
}

TEST_F(DbmsFederationTest, GreedyRunCompletesAllQueries) {
  DbmsFederation fed(SmallConfig());
  DbmsRunResult r = fed.Run("Greedy", 40, 300 * kMillisecond, 1);
  EXPECT_EQ(r.completed, 40);
  EXPECT_EQ(r.dropped, 0);
  EXPECT_GT(r.assign_ms.Mean(), 0.0);
  EXPECT_GT(r.total_ms.Mean(), r.assign_ms.Mean());
}

TEST_F(DbmsFederationTest, QaNtRunCompletesAllQueries) {
  DbmsFederation fed(SmallConfig());
  DbmsRunResult r = fed.Run("QA-NT", 40, 300 * kMillisecond, 1);
  EXPECT_EQ(r.completed + r.dropped, 40);
  EXPECT_EQ(r.dropped, 0);
  EXPECT_GT(r.total_ms.Mean(), 0.0);
}

TEST_F(DbmsFederationTest, AssignTimeDominatedBySlowestReply) {
  // Both mechanisms wait for every node's EXPLAIN reply, so the assign
  // time must be at least the slowest node's explain latency for templates
  // eligible on the slowest node.
  DbmsFederation fed(SmallConfig());
  DbmsRunResult r = fed.Run("Greedy", 30, 500 * kMillisecond, 2);
  // All assigns waited for at least one EXPLAIN round (hundreds of ms when
  // CPU-scaled): mean assign time must be clearly nonzero.
  EXPECT_GT(r.assign_ms.Mean(), 50.0);
}

TEST_F(DbmsFederationTest, RunsAreDeterministic) {
  DbmsFederation fed(SmallConfig());
  DbmsRunResult a = fed.Run("Greedy", 25, 300 * kMillisecond, 5);
  DbmsRunResult b = fed.Run("Greedy", 25, 300 * kMillisecond, 5);
  EXPECT_DOUBLE_EQ(a.total_ms.Mean(), b.total_ms.Mean());
  EXPECT_DOUBLE_EQ(a.assign_ms.Mean(), b.assign_ms.Mean());
}

}  // namespace
}  // namespace qa::dbms
