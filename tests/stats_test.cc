#include <gtest/gtest.h>

#include "stats/series.h"
#include "stats/summary.h"
#include "util/vtime.h"

namespace qa::stats {
namespace {

using util::kMillisecond;

TEST(SummaryTest, BasicAccumulation) {
  Summary s;
  EXPECT_TRUE(s.empty());
  s.Add(10.0);
  s.Add(20.0);
  s.Add(30.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.sum(), 60.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 20.0);
  EXPECT_DOUBLE_EQ(s.min(), 10.0);
  EXPECT_DOUBLE_EQ(s.max(), 30.0);
}

TEST(SummaryTest, PercentilesSorted) {
  Summary s;
  for (int i = 100; i >= 1; --i) s.Add(static_cast<double>(i));
  EXPECT_NEAR(s.Percentile(50), 50.5, 0.01);
  EXPECT_NEAR(s.Percentile(95), 95.05, 0.1);
}

TEST(SummaryTest, EmptySummaryIsSafe) {
  Summary s;
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.Percentile(50), 0.0);
}

TEST(SummaryTest, ToStringMentionsCount) {
  Summary s;
  s.Add(1.0);
  EXPECT_NE(s.ToString().find("n=1"), std::string::npos);
}

TEST(TimeSeriesTest, WindowQueries) {
  TimeSeries ts;
  ts.Add(0, 1.0);
  ts.Add(100 * kMillisecond, 2.0);
  ts.Add(200 * kMillisecond, 3.0);
  EXPECT_DOUBLE_EQ(ts.SumInWindow(0, 150 * kMillisecond), 3.0);
  EXPECT_EQ(ts.CountInWindow(0, 150 * kMillisecond), 2u);
  EXPECT_DOUBLE_EQ(ts.SumInWindow(150 * kMillisecond, 300 * kMillisecond),
                   3.0);
}

TEST(TimeSeriesTest, BucketSumsAndCounts) {
  TimeSeries ts;
  for (int i = 0; i < 10; ++i) {
    ts.Add(i * 100 * kMillisecond, 1.0);
  }
  std::vector<double> sums =
      ts.BucketSums(500 * kMillisecond, 1000 * kMillisecond);
  ASSERT_EQ(sums.size(), 2u);
  EXPECT_DOUBLE_EQ(sums[0], 5.0);
  EXPECT_DOUBLE_EQ(sums[1], 5.0);

  std::vector<size_t> counts =
      ts.BucketCounts(500 * kMillisecond, 1000 * kMillisecond);
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 5u);
}

TEST(TimeSeriesTest, BucketMeans) {
  TimeSeries ts;
  ts.Add(0, 2.0);
  ts.Add(1, 4.0);
  ts.Add(600 * kMillisecond, 10.0);
  std::vector<double> means =
      ts.BucketMeans(500 * kMillisecond, 1000 * kMillisecond);
  ASSERT_EQ(means.size(), 2u);
  EXPECT_DOUBLE_EQ(means[0], 3.0);
  EXPECT_DOUBLE_EQ(means[1], 10.0);
}

TEST(TimeSeriesTest, SamplesOutsideHorizonIgnored) {
  TimeSeries ts;
  ts.Add(2000 * kMillisecond, 1.0);
  std::vector<double> sums =
      ts.BucketSums(500 * kMillisecond, 1000 * kMillisecond);
  ASSERT_EQ(sums.size(), 2u);
  EXPECT_DOUBLE_EQ(sums[0] + sums[1], 0.0);
}

TEST(TimeSeriesTest, MaxTime) {
  TimeSeries ts;
  EXPECT_EQ(ts.MaxTime(), 0);
  ts.Add(5, 1.0);
  ts.Add(3, 1.0);
  EXPECT_EQ(ts.MaxTime(), 5);
}

}  // namespace
}  // namespace qa::stats
