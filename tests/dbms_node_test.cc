#include <gtest/gtest.h>

#include "dbms/buffer_pool.h"
#include "dbms/dbms_node.h"
#include "dbms/history.h"
#include "util/vtime.h"

namespace qa::dbms {
namespace {

using util::kMillisecond;

// ------------------------------------------------------------ BufferPool

TEST(BufferPoolTest, MissThenHit) {
  BufferPool pool(1000);
  EXPECT_EQ(pool.Access("t1", 400), 400);  // cold
  EXPECT_EQ(pool.Access("t1", 400), 0);    // cached
  EXPECT_EQ(pool.hits(), 1);
  EXPECT_EQ(pool.misses(), 1);
  EXPECT_EQ(pool.used(), 400);
}

TEST(BufferPoolTest, LruEviction) {
  BufferPool pool(1000);
  pool.Access("a", 400);
  pool.Access("b", 400);
  pool.Access("c", 400);  // evicts a (LRU)
  EXPECT_FALSE(pool.IsCached("a"));
  EXPECT_TRUE(pool.IsCached("b"));
  EXPECT_TRUE(pool.IsCached("c"));
  EXPECT_LE(pool.used(), 1000);
}

TEST(BufferPoolTest, AccessRefreshesLru) {
  BufferPool pool(1000);
  pool.Access("a", 400);
  pool.Access("b", 400);
  pool.Access("a", 400);  // refresh a
  pool.Access("c", 400);  // evicts b, not a
  EXPECT_TRUE(pool.IsCached("a"));
  EXPECT_FALSE(pool.IsCached("b"));
}

TEST(BufferPoolTest, OversizedTableNeverCached) {
  BufferPool pool(100);
  EXPECT_EQ(pool.Access("huge", 500), 500);
  EXPECT_FALSE(pool.IsCached("huge"));
  EXPECT_EQ(pool.Access("huge", 500), 500);  // still cold
}

TEST(BufferPoolTest, ClearResets) {
  BufferPool pool(1000);
  pool.Access("a", 400);
  pool.Clear();
  EXPECT_FALSE(pool.IsCached("a"));
  EXPECT_EQ(pool.used(), 0);
}

TEST(BufferPoolTest, GrownTableChargesDelta) {
  BufferPool pool(1000);
  pool.Access("a", 400);
  EXPECT_EQ(pool.Access("a", 500), 100);
  EXPECT_EQ(pool.used(), 500);
}

// ------------------------------------------------------------- History

TEST(ExecutionHistoryTest, EstimateAfterRecord) {
  ExecutionHistory history(0.5);
  EXPECT_FALSE(history.Estimate("sig").has_value());
  history.Record("sig", 1000);
  ASSERT_TRUE(history.Estimate("sig").has_value());
  EXPECT_EQ(*history.Estimate("sig"), 1000);
}

TEST(ExecutionHistoryTest, EwmaSmoothing) {
  ExecutionHistory history(0.5);
  history.Record("sig", 1000);
  history.Record("sig", 2000);
  EXPECT_EQ(*history.Estimate("sig"), 1500);
  EXPECT_EQ(history.ObservationCount("sig"), 2);
}

TEST(ExecutionHistoryTest, SignaturesIndependent) {
  ExecutionHistory history;
  history.Record("a", 100);
  history.Record("b", 900);
  EXPECT_EQ(*history.Estimate("a"), 100);
  EXPECT_EQ(*history.Estimate("b"), 900);
  EXPECT_EQ(history.num_signatures(), 2u);
}

// ------------------------------------------------------------- DbmsNode

class DbmsNodeTest : public ::testing::Test {
 protected:
  static Database MakeDb() {
    Database db;
    Table t("items", Schema({{"id", ValueType::kInt},
                             {"cat", ValueType::kInt},
                             {"val", ValueType::kDouble}}));
    for (int i = 0; i < 2000; ++i) {
      t.AppendUnchecked({Value(int64_t{i}), Value(int64_t{i % 10}),
                         Value(static_cast<double>(i))});
    }
    util::Status status = db.CreateTable(std::move(t));
    EXPECT_TRUE(status.ok());
    return db;
  }

  static SelectStatement Query() {
    return StatementBuilder()
        .From("items")
        .Where(0, "cat", 0, Value(int64_t{3}))
        .Build();
  }
};

TEST_F(DbmsNodeTest, ExecuteProducesDurationAndHistory) {
  DbmsNodeConfig config;
  DbmsNode node(0, MakeDb(), config);
  auto outcome = node.ExecuteQuery(Query());
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->result_rows, 200);
  EXPECT_GT(outcome->duration, 0);
  EXPECT_EQ(node.history().ObservationCount(outcome->signature), 1);
}

TEST_F(DbmsNodeTest, SecondExecutionCheaperDueToBufferPool) {
  DbmsNodeConfig config;
  config.data_scale = 1000.0;  // make I/O dominate
  DbmsNode node(0, MakeDb(), config);
  auto first = node.ExecuteQuery(Query());
  auto second = node.ExecuteQuery(Query());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_LT(second->duration, first->duration);
}

TEST_F(DbmsNodeTest, EstimateIsBufferBlindUntilHistoryExists) {
  DbmsNodeConfig config;
  config.data_scale = 1000.0;
  DbmsNode node(0, MakeDb(), config);

  auto cold_estimate = node.EstimateQuery(Query());
  ASSERT_TRUE(cold_estimate.ok());
  EXPECT_FALSE(cold_estimate->from_history);

  // Execute twice: the table is now resident, so the actual duration is
  // far below the buffer-blind estimate...
  auto e1 = node.ExecuteQuery(Query());
  auto warm_run = node.ExecuteQuery(Query());
  ASSERT_TRUE(warm_run.ok());
  EXPECT_LT(warm_run->duration, cold_estimate->est_exec);

  // ...and the history-based estimate now reflects observed reality.
  auto warm_estimate = node.EstimateQuery(Query());
  ASSERT_TRUE(warm_estimate.ok());
  EXPECT_TRUE(warm_estimate->from_history);
  EXPECT_LT(warm_estimate->est_exec, cold_estimate->est_exec);
}

TEST_F(DbmsNodeTest, ExplainTimeScalesWithCpu) {
  DbmsNodeConfig fast_config;
  fast_config.hw.cpu_ghz = 3.0;
  DbmsNodeConfig slow_config;
  slow_config.hw.cpu_ghz = 1.0;
  DbmsNode fast(0, MakeDb(), fast_config);
  DbmsNode slow(1, MakeDb(), slow_config);
  auto ef = fast.EstimateQuery(Query());
  auto es = slow.EstimateQuery(Query());
  ASSERT_TRUE(ef.ok());
  ASSERT_TRUE(es.ok());
  EXPECT_LT(ef->explain_time, es->explain_time);
}

TEST_F(DbmsNodeTest, CanEvaluateChecksRelations) {
  DbmsNode node(0, MakeDb(), DbmsNodeConfig());
  EXPECT_TRUE(node.CanEvaluate(Query()));
  SelectStatement missing = StatementBuilder().From("nope").Build();
  EXPECT_FALSE(node.CanEvaluate(missing));
}

TEST_F(DbmsNodeTest, ResetStateClearsCachesAndHistory) {
  DbmsNodeConfig config;
  config.data_scale = 1000.0;
  DbmsNode node(0, MakeDb(), config);
  auto r1 = node.ExecuteQuery(Query());
  ASSERT_TRUE(r1.ok());
  node.ResetState();
  EXPECT_EQ(node.history().num_signatures(), 0u);
  // Cold again: duration matches the first run.
  auto r2 = node.ExecuteQuery(Query());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->duration, r2->duration);
}

}  // namespace
}  // namespace qa::dbms
