#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "query/cost_model.h"
#include "query/node_profile.h"
#include "query/template_gen.h"
#include "util/rng.h"
#include "util/vtime.h"

namespace qa::query {
namespace {

using util::kMillisecond;

TEST(NodeProfileTest, SyntheticProfilesRespectRanges) {
  NodeProfileConfig config;
  config.num_nodes = 100;
  util::Rng rng(42);
  std::vector<NodeProfile> profiles = MakeSyntheticProfiles(config, rng);
  ASSERT_EQ(profiles.size(), 100u);
  int hash_nodes = 0;
  for (const NodeProfile& p : profiles) {
    EXPECT_GE(p.cpu_ghz, config.min_cpu_ghz);
    EXPECT_LE(p.cpu_ghz, config.max_cpu_ghz);
    EXPECT_GE(p.io_mbps, config.min_io_mbps);
    EXPECT_LE(p.io_mbps, config.max_io_mbps);
    EXPECT_GE(p.buffer_mb, config.min_buffer_mb);
    EXPECT_LE(p.buffer_mb, config.max_buffer_mb);
    if (p.supports_hash_join) ++hash_nodes;
  }
  // Exactly 95 of 100 nodes have hash joins (Table 3).
  EXPECT_EQ(hash_nodes, 95);
}

TEST(NodeProfileTest, HomogeneousProfilesIdentical) {
  NodeProfile base;
  base.cpu_ghz = 2.0;
  std::vector<NodeProfile> profiles = MakeHomogeneousProfiles(5, base);
  ASSERT_EQ(profiles.size(), 5u);
  for (const NodeProfile& p : profiles) EXPECT_EQ(p.cpu_ghz, 2.0);
}

TEST(MatrixCostModelTest, DefaultsInfeasible) {
  MatrixCostModel model(2, 3);
  EXPECT_EQ(model.Cost(0, 0), kInfeasibleCost);
  EXPECT_FALSE(model.CanEvaluate(0, 0));
  model.SetCost(0, 0, 100);
  EXPECT_EQ(model.Cost(0, 0), 100);
  EXPECT_TRUE(model.CanEvaluate(0, 0));
  model.SetInfeasible(0, 0);
  EXPECT_FALSE(model.CanEvaluate(0, 0));
}

TEST(MatrixCostModelTest, FeasibleNodesAndBestCost) {
  MatrixCostModel model(1, 4);
  model.SetCost(0, 1, 300);
  model.SetCost(0, 3, 200);
  EXPECT_EQ(model.FeasibleNodes(0), (std::vector<catalog::NodeId>{1, 3}));
  EXPECT_EQ(model.BestCost(0), 200);
}

TEST(TemplateGenTest, TemplatesAreEvaluableSomewhere) {
  catalog::CatalogConfig cat_config;
  cat_config.num_relations = 200;
  cat_config.num_nodes = 20;
  util::Rng rng(42);
  catalog::Catalog cat = catalog::Catalog::MakeSynthetic(cat_config, rng);

  TemplateGenConfig config;
  config.num_classes = 50;
  std::vector<QueryTemplate> templates = GenerateTemplates(cat, config, rng);
  ASSERT_EQ(templates.size(), 50u);
  for (const QueryTemplate& tmpl : templates) {
    EXPECT_FALSE(tmpl.relations.empty());
    EXPECT_LE(tmpl.num_joins(), config.max_joins);
    // Some node must hold every relation of the template.
    EXPECT_FALSE(cat.NodesHoldingAll(tmpl.relations).empty());
  }
}

class SyntheticCostModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog::CatalogConfig cat_config;
    cat_config.num_relations = 100;
    cat_config.num_nodes = 10;
    util::Rng rng(42);
    cat_ = std::make_unique<catalog::Catalog>(
        catalog::Catalog::MakeSynthetic(cat_config, rng));

    NodeProfileConfig prof_config;
    prof_config.num_nodes = 10;
    std::vector<NodeProfile> profiles =
        MakeSyntheticProfiles(prof_config, rng);

    TemplateGenConfig tmpl_config;
    tmpl_config.num_classes = 20;
    tmpl_config.max_joins = 10;
    std::vector<QueryTemplate> templates =
        GenerateTemplates(*cat_, tmpl_config, rng);

    model_ = std::make_unique<SyntheticCostModel>(
        cat_.get(), std::move(profiles), std::move(templates));
  }

  std::unique_ptr<catalog::Catalog> cat_;
  std::unique_ptr<SyntheticCostModel> model_;
};

TEST_F(SyntheticCostModelTest, CostsPositiveWhereFeasible) {
  int feasible_pairs = 0;
  for (QueryClassId k = 0; k < model_->num_classes(); ++k) {
    for (catalog::NodeId n = 0; n < model_->num_nodes(); ++n) {
      util::VDuration c = model_->Cost(k, n);
      if (c != kInfeasibleCost) {
        EXPECT_GT(c, 0);
        ++feasible_pairs;
      }
    }
  }
  EXPECT_GT(feasible_pairs, 0);
}

TEST_F(SyntheticCostModelTest, FeasibilityMatchesCatalogMirrors) {
  for (QueryClassId k = 0; k < model_->num_classes(); ++k) {
    const QueryTemplate& tmpl = model_->GetTemplate(k);
    for (catalog::NodeId n = 0; n < model_->num_nodes(); ++n) {
      EXPECT_EQ(model_->CanEvaluate(k, n),
                cat_->NodeHoldsAll(n, tmpl.relations));
    }
  }
}

TEST_F(SyntheticCostModelTest, EveryClassHasAnEvaluator) {
  for (QueryClassId k = 0; k < model_->num_classes(); ++k) {
    EXPECT_FALSE(model_->FeasibleNodes(k).empty()) << "class " << k;
  }
}

TEST_F(SyntheticCostModelTest, CalibrationHitsTargetMeanBestCost) {
  util::VDuration target = 2000 * kMillisecond;
  model_->CalibrateBestCost(target);
  double sum = 0.0;
  int counted = 0;
  for (QueryClassId k = 0; k < model_->num_classes(); ++k) {
    util::VDuration best = model_->BestCost(k);
    if (best == kInfeasibleCost) continue;
    sum += static_cast<double>(best);
    ++counted;
  }
  ASSERT_GT(counted, 0);
  EXPECT_NEAR(sum / counted, static_cast<double>(target),
              static_cast<double>(target) * 0.01);
}

TEST_F(SyntheticCostModelTest, FasterNodeIsCheaperOnSameTemplate) {
  // Build a 2-node model sharing the same single-relation template where
  // node 0 strictly dominates node 1 in hardware.
  catalog::Catalog cat;
  cat.AddRelation("r", 10 << 20, 10, 100000, {0, 1});
  NodeProfile fast{3.5, 80.0, 10.0, true};
  NodeProfile slow{1.0, 5.0, 2.0, true};
  QueryTemplate tmpl;
  tmpl.class_id = 0;
  tmpl.relations = {0};
  SyntheticCostModel model(&cat, {fast, slow}, {tmpl});
  EXPECT_LT(model.Cost(0, 0), model.Cost(0, 1));
}

TEST_F(SyntheticCostModelTest, MoreJoinsCostMore) {
  catalog::Catalog cat;
  cat.AddRelation("a", 10 << 20, 10, 100000, {0});
  cat.AddRelation("b", 10 << 20, 10, 100000, {0});
  cat.AddRelation("c", 10 << 20, 10, 100000, {0});
  NodeProfile hw{2.0, 40.0, 6.0, true};
  QueryTemplate one;
  one.class_id = 0;
  one.relations = {0};
  QueryTemplate three;
  three.class_id = 1;
  three.relations = {0, 1, 2};
  SyntheticCostModel model(&cat, {hw}, {one, three});
  EXPECT_LT(model.Cost(0, 0), model.Cost(1, 0));
}

TEST_F(SyntheticCostModelTest, MissingHashJoinIsSlower) {
  catalog::Catalog cat;
  cat.AddRelation("a", 10 << 20, 10, 100000, {0, 1});
  cat.AddRelation("b", 10 << 20, 10, 100000, {0, 1});
  NodeProfile with_hash{2.0, 40.0, 6.0, true};
  NodeProfile without_hash{2.0, 40.0, 6.0, false};
  QueryTemplate tmpl;
  tmpl.class_id = 0;
  tmpl.relations = {0, 1};
  SyntheticCostModel model(&cat, {with_hash, without_hash}, {tmpl});
  EXPECT_LT(model.Cost(0, 0), model.Cost(0, 1));
}

}  // namespace
}  // namespace qa::query
