#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "util/rng.h"

namespace qa::catalog {
namespace {

TEST(CatalogTest, AddRelationAndLookup) {
  Catalog cat;
  RelationId id = cat.AddRelation("orders", 1 << 20, 10, 10000, {0, 2});
  EXPECT_EQ(id, 0);
  EXPECT_EQ(cat.num_relations(), 1);
  EXPECT_EQ(cat.relation(id).name, "orders");
  EXPECT_EQ(cat.relation(id).size_bytes, 1 << 20);
  EXPECT_EQ(cat.MirrorsOf(id), (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(cat.num_nodes(), 3);
}

TEST(CatalogTest, RelationsAtNode) {
  Catalog cat;
  cat.AddRelation("a", 100, 5, 10, {0, 1});
  cat.AddRelation("b", 100, 5, 10, {1});
  cat.AddRelation("c", 100, 5, 10, {0});
  EXPECT_EQ(cat.RelationsAt(0), (std::vector<RelationId>{0, 2}));
  EXPECT_EQ(cat.RelationsAt(1), (std::vector<RelationId>{0, 1}));
}

TEST(CatalogTest, NodeHoldsAll) {
  Catalog cat;
  cat.AddRelation("a", 100, 5, 10, {0, 1});
  cat.AddRelation("b", 100, 5, 10, {1});
  EXPECT_TRUE(cat.NodeHoldsAll(1, {0, 1}));
  EXPECT_FALSE(cat.NodeHoldsAll(0, {0, 1}));
  EXPECT_TRUE(cat.NodeHoldsAll(0, {}));
}

TEST(CatalogTest, NodesHoldingAll) {
  Catalog cat;
  cat.AddRelation("a", 100, 5, 10, {0, 1, 2});
  cat.AddRelation("b", 100, 5, 10, {1, 2});
  cat.AddRelation("c", 100, 5, 10, {2});
  EXPECT_EQ(cat.NodesHoldingAll({0, 1}), (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(cat.NodesHoldingAll({0, 1, 2}), (std::vector<NodeId>{2}));
}

TEST(CatalogTest, SyntheticMatchesConfigShape) {
  CatalogConfig config;
  config.num_relations = 200;
  config.num_nodes = 50;
  config.avg_mirrors_per_relation = 5.0;
  util::Rng rng(42);
  Catalog cat = Catalog::MakeSynthetic(config, rng);

  EXPECT_EQ(cat.num_relations(), 200);
  EXPECT_EQ(cat.num_nodes(), 50);

  double total_mirrors = 0.0;
  for (RelationId r = 0; r < cat.num_relations(); ++r) {
    const Relation& rel = cat.relation(r);
    EXPECT_GE(rel.size_bytes, config.min_relation_bytes);
    EXPECT_LE(rel.size_bytes, config.max_relation_bytes);
    EXPECT_EQ(rel.num_attributes, config.num_attributes);
    EXPECT_GT(rel.cardinality, 0);
    const std::vector<NodeId>& mirrors = cat.MirrorsOf(r);
    EXPECT_GE(mirrors.size(), 1u);
    // Mirrors must be distinct nodes.
    std::set<NodeId> unique(mirrors.begin(), mirrors.end());
    EXPECT_EQ(unique.size(), mirrors.size());
    total_mirrors += static_cast<double>(mirrors.size());
  }
  // Mean mirror count should be near the configured average.
  EXPECT_NEAR(total_mirrors / cat.num_relations(),
              config.avg_mirrors_per_relation, 1.0);
}

TEST(CatalogTest, SyntheticPlacementConsistency) {
  CatalogConfig config;
  config.num_relations = 100;
  config.num_nodes = 20;
  util::Rng rng(7);
  Catalog cat = Catalog::MakeSynthetic(config, rng);
  // by-node and by-relation placements must agree.
  for (NodeId n = 0; n < cat.num_nodes(); ++n) {
    for (RelationId r : cat.RelationsAt(n)) {
      const std::vector<NodeId>& mirrors = cat.MirrorsOf(r);
      EXPECT_NE(std::find(mirrors.begin(), mirrors.end(), n), mirrors.end());
    }
  }
}

TEST(CatalogTest, SyntheticDeterministicBySeed) {
  CatalogConfig config;
  config.num_relations = 50;
  config.num_nodes = 10;
  util::Rng rng1(5);
  util::Rng rng2(5);
  Catalog a = Catalog::MakeSynthetic(config, rng1);
  Catalog b = Catalog::MakeSynthetic(config, rng2);
  for (RelationId r = 0; r < a.num_relations(); ++r) {
    EXPECT_EQ(a.relation(r).size_bytes, b.relation(r).size_bytes);
    EXPECT_EQ(a.MirrorsOf(r), b.MirrorsOf(r));
  }
}

}  // namespace
}  // namespace qa::catalog
