#include <gtest/gtest.h>

#include "market/qa_nt.h"
#include "util/vtime.h"

namespace qa::market {
namespace {

using util::kMillisecond;

QaNtAgent MakeFig1N1Agent(QaNtConfig config = {}) {
  // Fig. 1's N1: q1 400 ms, q2 100 ms; period 500 ms.
  return QaNtAgent(0, {400 * kMillisecond, 100 * kMillisecond},
                   500 * kMillisecond, config);
}

TEST(QaNtAgentTest, InitialSupplyPrefersDensestClass) {
  QaNtAgent agent = MakeFig1N1Agent();
  agent.BeginPeriod();
  // Equal prices: q2 is 4x denser. All budget goes to q2 (paper's example:
  // "node N1 will supply only q2 queries").
  EXPECT_EQ(agent.planned_supply(), QuantityVector({0, 5}));
}

TEST(QaNtAgentTest, OffersWhileSupplyLastsThenDeclines) {
  QaNtAgent agent = MakeFig1N1Agent();
  agent.BeginPeriod();
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(agent.OnRequest(1)) << "offer " << i;
    agent.OnOfferAccepted(1);
  }
  // Supply exhausted: decline and raise the price of q2.
  double price_before = agent.prices()[1];
  EXPECT_FALSE(agent.OnRequest(1));
  EXPECT_GT(agent.prices()[1], price_before);
}

TEST(QaNtAgentTest, DeclineRaisesPriceMultiplicatively) {
  QaNtConfig config;
  config.lambda = 0.1;
  // Force the first-order-condition gate on so the fresh (uncontended)
  // agent already restricts supply to its densest class.
  config.density_gate_when_idle = true;
  QaNtAgent agent = MakeFig1N1Agent(config);
  agent.BeginPeriod();
  // q1 has no planned supply at equal prices.
  double p0 = agent.prices()[0];
  EXPECT_FALSE(agent.OnRequest(0));
  EXPECT_DOUBLE_EQ(agent.prices()[0], p0 * 1.1);
  EXPECT_FALSE(agent.OnRequest(0));
  EXPECT_DOUBLE_EQ(agent.prices()[0], p0 * 1.1 * 1.1);
}

TEST(QaNtAgentTest, EndPeriodDecaysLeftoverSupplyPrices) {
  QaNtConfig config;
  config.lambda = 0.05;
  QaNtAgent agent = MakeFig1N1Agent(config);
  agent.BeginPeriod();
  ASSERT_EQ(agent.planned_supply()[1], 5);
  // Sell only 2 of the 5 planned q2.
  agent.OnRequest(1);
  agent.OnOfferAccepted(1);
  agent.OnRequest(1);
  agent.OnOfferAccepted(1);
  double p1 = agent.prices()[1];
  agent.EndPeriod();
  // Leftover 3 units: p -= 3 * lambda * p.
  EXPECT_DOUBLE_EQ(agent.prices()[1], p1 * (1.0 - 3 * 0.05));
}

TEST(QaNtAgentTest, PriceFloorHolds) {
  QaNtConfig config;
  config.lambda = 0.5;
  config.price_floor = 1e-6;
  QaNtAgent agent = MakeFig1N1Agent(config);
  // Never sell anything for many periods: price decays but stays >= floor.
  for (int t = 0; t < 100; ++t) {
    agent.BeginPeriod();
    agent.EndPeriod();
  }
  EXPECT_GE(agent.prices()[1], config.price_floor);
}

TEST(QaNtAgentTest, PriceCapHolds) {
  QaNtConfig config;
  config.lambda = 1.0;
  config.price_cap = 100.0;
  QaNtAgent agent = MakeFig1N1Agent(config);
  agent.BeginPeriod();
  for (int i = 0; i < 50; ++i) agent.OnRequest(0);
  EXPECT_LE(agent.prices()[0], config.price_cap);
}

TEST(QaNtAgentTest, PersistentDemandShiftsSupplyToScarceClass) {
  // The paper's §3.3 narrative: demand for q1 cannot be satisfied, its
  // price rises until N1 starts supplying q1 too.
  QaNtConfig config;
  config.lambda = 0.2;
  QaNtAgent agent = MakeFig1N1Agent(config);
  bool supplies_q1 = false;
  for (int period = 0; period < 50 && !supplies_q1; ++period) {
    agent.BeginPeriod();
    if (agent.planned_supply()[0] > 0) {
      supplies_q1 = true;
      break;
    }
    // Clients keep asking for q1; the agent keeps declining (no supply).
    for (int i = 0; i < 5; ++i) agent.OnRequest(0);
    // q2 demand exists but small: sell one unit only.
    if (agent.OnRequest(1)) agent.OnOfferAccepted(1);
    agent.EndPeriod();
  }
  EXPECT_TRUE(supplies_q1);
}

TEST(QaNtAgentTest, CannotEvaluateClassNeverOffersAndNoPriceMove) {
  QaNtAgent agent(0,
                  {400 * kMillisecond, CapacitySupplySet::kCannotEvaluate},
                  500 * kMillisecond);
  agent.BeginPeriod();
  double p1 = agent.prices()[1];
  EXPECT_FALSE(agent.OnRequest(1));
  EXPECT_DOUBLE_EQ(agent.prices()[1], p1);
  EXPECT_FALSE(agent.CanEvaluate(1));
}

TEST(QaNtAgentTest, OvershootOfferForQueriesLongerThanPeriod) {
  // Query costs 2 s against a 500 ms period: the per-period knapsack is
  // empty, but the agent must still offer one query and repay the
  // overshoot via debt.
  QaNtAgent agent(0, {2000 * kMillisecond}, 500 * kMillisecond);
  agent.BeginPeriod();
  EXPECT_TRUE(agent.WouldAccept(0));
  EXPECT_TRUE(agent.OnRequest(0));
  agent.OnOfferAccepted(0);
  // Budget is spent (deeply negative): a second request is declined.
  EXPECT_LT(agent.remaining_budget(), 0);
  EXPECT_FALSE(agent.OnRequest(0));

  // The next three periods are consumed paying off the 2 s debt.
  int blocked_periods = 0;
  for (int t = 0; t < 3; ++t) {
    agent.EndPeriod();
    agent.BeginPeriod();
    if (!agent.WouldAccept(0)) ++blocked_periods;
  }
  EXPECT_EQ(blocked_periods, 3);
  // Debt paid: the agent offers again.
  agent.EndPeriod();
  agent.BeginPeriod();
  EXPECT_TRUE(agent.WouldAccept(0));
}

TEST(QaNtAgentTest, OvershootAcceptsAnyNearDensityClass) {
  // Two classes, both longer than the period: the overshoot offer must
  // serve whichever class is requested first (its density is within the
  // tolerance of the best), not only the densest one.
  QaNtAgent agent(0, {2000 * kMillisecond, 1500 * kMillisecond},
                  500 * kMillisecond);
  agent.BeginPeriod();
  // Class 0 is *not* the densest (1/2000 < 1/1500), but 0.75 >= 0.5.
  EXPECT_TRUE(agent.OnRequest(0));
  agent.OnOfferAccepted(0);
  EXPECT_FALSE(agent.OnRequest(1));
}

TEST(QaNtAgentTest, DensityGateDeclinesFarBelowBestClass) {
  // q1's density (1/400) is a quarter of q2's (1/100) at equal prices —
  // below the 0.5 tolerance, so q1 is declined even though it would fit
  // the remaining budget (the steering that parks cheap classes on the
  // node and leaves q1 to nodes where it is relatively attractive).
  QaNtConfig config;
  config.density_gate_when_idle = true;
  QaNtAgent agent = MakeFig1N1Agent(config);
  agent.BeginPeriod();
  EXPECT_FALSE(agent.WouldAccept(0));
  EXPECT_TRUE(agent.WouldAccept(1));
  // Raise q1's price: once its density crosses half of q2's, it is
  // accepted.
  agent.SetPrices(PriceVector({2.5, 1.0}));
  agent.BeginPeriod();
  EXPECT_TRUE(agent.WouldAccept(0));
}

TEST(QaNtAgentTest, DensityGateArmsOnlyUnderContention) {
  // Fresh agent: gate disarmed, any evaluable class is admitted while
  // budget remains (zero shadow price on idle capacity)...
  QaNtAgent agent = MakeFig1N1Agent();
  agent.BeginPeriod();
  EXPECT_FALSE(agent.density_gate_active());
  EXPECT_TRUE(agent.WouldAccept(0));
  // ...but a period that exhausts the budget arms the gate for the next.
  ASSERT_TRUE(agent.OnRequest(0));  // 400 ms
  agent.OnOfferAccepted(0);
  ASSERT_TRUE(agent.OnRequest(1));  // +100 ms = whole 500 ms budget
  agent.OnOfferAccepted(1);
  agent.EndPeriod();
  agent.BeginPeriod();
  EXPECT_TRUE(agent.density_gate_active());
  EXPECT_FALSE(agent.WouldAccept(0));  // back to densest-only steering
  // An idle period disarms it again.
  agent.EndPeriod();
  agent.BeginPeriod();
  EXPECT_FALSE(agent.density_gate_active());
}

TEST(QaNtAgentTest, BankedCapacityCompensatesRounding) {
  // 300 ms queries, 500 ms period: plain per-period planning strands
  // 200 ms per period; with banking the long-run rate approaches the
  // true capacity of 1/0.3 per period.
  QaNtAgent agent(0, {300 * kMillisecond}, 500 * kMillisecond);
  int accepted = 0;
  const int periods = 600;
  for (int t = 0; t < periods; ++t) {
    agent.BeginPeriod();
    while (agent.OnRequest(0)) {
      agent.OnOfferAccepted(0);
      ++accepted;
    }
    agent.EndPeriod();
  }
  double per_period = static_cast<double>(accepted) / periods;
  EXPECT_NEAR(per_period, 500.0 / 300.0, 0.05);
}

TEST(QaNtAgentTest, MinOneOfferDisabled) {
  QaNtConfig config;
  config.allow_min_one_offer = false;
  QaNtAgent agent(0, {2000 * kMillisecond}, 500 * kMillisecond, config);
  agent.BeginPeriod();
  EXPECT_TRUE(agent.planned_supply().IsZero());
  EXPECT_FALSE(agent.WouldAccept(0));
  EXPECT_FALSE(agent.OnRequest(0));
}

TEST(QaNtAgentTest, LongRunThroughputRespectsCapacityWithDebt) {
  // 700 ms queries, 500 ms periods: long-run acceptance rate must be about
  // 500/700 queries per period, not 1 per period.
  QaNtAgent agent(0, {700 * kMillisecond}, 500 * kMillisecond);
  int accepted = 0;
  const int periods = 700;
  for (int t = 0; t < periods; ++t) {
    agent.BeginPeriod();
    while (agent.OnRequest(0)) {
      agent.OnOfferAccepted(0);
      ++accepted;
    }
    agent.EndPeriod();
  }
  double per_period = static_cast<double>(accepted) / periods;
  EXPECT_NEAR(per_period, 500.0 / 700.0, 0.05);
}

TEST(QaNtAgentTest, ActivationThresholdDisablesRestrictionWhenPricesLow) {
  QaNtConfig config;
  config.activation_threshold = 10.0;  // initial price 1.0 is far below
  QaNtAgent agent = MakeFig1N1Agent(config);
  agent.BeginPeriod();
  // q1 has zero planned supply, but restriction is inactive: still offers.
  EXPECT_FALSE(agent.SupplyRestrictionActive());
  EXPECT_TRUE(agent.OnRequest(0));
}

TEST(QaNtAgentTest, StatsAreTracked) {
  QaNtConfig config;
  config.density_gate_when_idle = true;  // make the q1 request a decline
  QaNtAgent agent = MakeFig1N1Agent(config);
  agent.BeginPeriod();
  agent.OnRequest(1);
  agent.OnOfferAccepted(1);
  agent.OnRequest(0);  // decline
  agent.EndPeriod();
  const QaNtAgentStats& stats = agent.stats();
  EXPECT_EQ(stats.requests_seen, 2);
  EXPECT_EQ(stats.offers_made, 1);
  EXPECT_EQ(stats.offers_accepted, 1);
  EXPECT_EQ(stats.declines_no_supply, 1);
  EXPECT_EQ(stats.periods, 1);
}

TEST(QaNtAgentTest, SetPricesOverrides) {
  QaNtAgent agent = MakeFig1N1Agent();
  agent.SetPrices(PriceVector({10.0, 1.0}));
  agent.BeginPeriod();
  // q1 now denser (10/400 > 1/100): supply shifts to q1.
  EXPECT_GE(agent.planned_supply()[0], 1);
}

}  // namespace
}  // namespace qa::market
