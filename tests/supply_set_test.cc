#include <gtest/gtest.h>

#include "market/supply_set.h"
#include "util/rng.h"
#include "util/vtime.h"

namespace qa::market {
namespace {

using util::kMillisecond;

TEST(CapacitySupplySetTest, ContainsRespectsBudget) {
  // Node can run q1 in 400 ms, q2 in 100 ms; period 500 ms (Fig. 1's N1).
  CapacitySupplySet set({400 * kMillisecond, 100 * kMillisecond},
                        500 * kMillisecond);
  EXPECT_TRUE(set.Contains(QuantityVector({0, 0})));
  EXPECT_TRUE(set.Contains(QuantityVector({1, 1})));
  EXPECT_TRUE(set.Contains(QuantityVector({0, 5})));
  EXPECT_FALSE(set.Contains(QuantityVector({1, 2})));
  EXPECT_FALSE(set.Contains(QuantityVector({2, 0})));
  EXPECT_FALSE(set.Contains(QuantityVector({-1, 0})));
}

TEST(CapacitySupplySetTest, CannotEvaluateClassForcesZero) {
  CapacitySupplySet set(
      {400 * kMillisecond, CapacitySupplySet::kCannotEvaluate},
      500 * kMillisecond);
  EXPECT_FALSE(set.CanEvaluateClass(1));
  EXPECT_TRUE(set.Contains(QuantityVector({1, 0})));
  EXPECT_FALSE(set.Contains(QuantityVector({0, 1})));
}

TEST(CapacitySupplySetTest, CostOf) {
  CapacitySupplySet set({100, 200}, 1000);
  EXPECT_EQ(set.CostOf(QuantityVector({2, 3})), 800);
  EXPECT_EQ(set.CostOf(QuantityVector({0, 0})), 0);
}

TEST(CapacitySupplySetTest, MaximizeValuePicksDensestClass) {
  CapacitySupplySet set({400 * kMillisecond, 100 * kMillisecond},
                        500 * kMillisecond);
  // Equal prices: q2 has 4x the value density; expect all q2.
  QuantityVector s = set.MaximizeValue(PriceVector(2, 1.0));
  EXPECT_EQ(s, QuantityVector({0, 5}));
}

TEST(CapacitySupplySetTest, MaximizeValueFollowsPriceShift) {
  CapacitySupplySet set({400 * kMillisecond, 100 * kMillisecond},
                        500 * kMillisecond);
  // Make q1 10x more valuable: density q1 = 10/400 > q2 = 1/100.
  PriceVector p({10.0, 1.0});
  QuantityVector s = set.MaximizeValue(p);
  EXPECT_EQ(s[0], 1);
  // Leftover 100 ms is topped up with one q2.
  EXPECT_EQ(s[1], 1);
}

TEST(CapacitySupplySetTest, MaximizeValueIgnoresZeroPrices) {
  CapacitySupplySet set({100, 100}, 1000);
  PriceVector p({1.0, 0.0});
  QuantityVector s = set.MaximizeValue(p);
  EXPECT_EQ(s[0], 10);
  EXPECT_EQ(s[1], 0);
}

TEST(CapacitySupplySetTest, MaximizeValueWithBudget) {
  CapacitySupplySet set({100, 100}, 1000);
  QuantityVector s = set.MaximizeValueWithBudget(PriceVector(2, 1.0), 250);
  EXPECT_EQ(s.Total(), 2);
  EXPECT_TRUE(set.Contains(s));
}

TEST(CapacitySupplySetTest, BestDensityClass) {
  CapacitySupplySet set(
      {400, 100, CapacitySupplySet::kCannotEvaluate}, 1000);
  EXPECT_EQ(set.BestDensityClass(PriceVector(3, 1.0)), 1);
  EXPECT_EQ(set.BestDensityClass(PriceVector({8.0, 1.0, 1.0})), 0);
  // All prices zero: no class.
  EXPECT_EQ(set.BestDensityClass(PriceVector(3, 0.0)), -1);
}

TEST(CapacitySupplySetTest, GreedyResultAlwaysFeasible) {
  util::Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    int k = static_cast<int>(rng.UniformInt(1, 5));
    std::vector<util::VDuration> costs;
    for (int i = 0; i < k; ++i) {
      costs.push_back(rng.Bernoulli(0.2)
                          ? CapacitySupplySet::kCannotEvaluate
                          : rng.UniformInt(1, 500));
    }
    CapacitySupplySet set(std::move(costs), rng.UniformInt(1, 2000));
    PriceVector p(k);
    for (int i = 0; i < k; ++i) p[i] = rng.UniformReal(0.0, 10.0);
    QuantityVector s = set.MaximizeValue(p);
    EXPECT_TRUE(set.Contains(s)) << "trial " << trial;
  }
}

TEST(FiniteSupplySetTest, ExactMaximization) {
  FiniteSupplySet set({QuantityVector({0, 0}), QuantityVector({1, 0}),
                       QuantityVector({0, 2})});
  EXPECT_TRUE(set.Contains(QuantityVector({0, 2})));
  EXPECT_FALSE(set.Contains(QuantityVector({1, 1})));
  EXPECT_EQ(set.MaximizeValue(PriceVector({3.0, 1.0})),
            QuantityVector({1, 0}));
  EXPECT_EQ(set.MaximizeValue(PriceVector({1.0, 1.0})),
            QuantityVector({0, 2}));
}

TEST(SupplySetTest, CanAddUnit) {
  CapacitySupplySet set({400 * kMillisecond, 100 * kMillisecond},
                        500 * kMillisecond);
  QuantityVector s({1, 0});
  EXPECT_TRUE(set.CanAddUnit(s, 1));
  EXPECT_FALSE(set.CanAddUnit(s, 0));
}

TEST(EnumerateSupplyVectorsTest, MatchesContains) {
  CapacitySupplySet set({200, 300}, 700);
  std::vector<QuantityVector> all =
      EnumerateSupplyVectors(set, QuantityVector({5, 5}));
  // (0,0),(1,0),(2,0),(3,0),(0,1),(1,1),(2,1),(0,2) — note (1,2) costs 800.
  EXPECT_EQ(all.size(), 8u);
  for (const QuantityVector& v : all) EXPECT_TRUE(set.Contains(v));
}

// Property sweep: the density greedy never beats the exact enumeration and
// is exact for single-class instances.
class GreedyVsExactTest : public ::testing::TestWithParam<int> {};

TEST_P(GreedyVsExactTest, GreedyWithinToleranceOfExact) {
  util::Rng rng(static_cast<uint64_t>(GetParam()));
  int k = static_cast<int>(rng.UniformInt(1, 3));
  std::vector<util::VDuration> costs;
  for (int i = 0; i < k; ++i) costs.push_back(rng.UniformInt(50, 400));
  util::VDuration budget = rng.UniformInt(200, 1500);
  CapacitySupplySet set(std::move(costs), budget);
  PriceVector p(k);
  for (int i = 0; i < k; ++i) p[i] = rng.UniformReal(0.1, 5.0);

  QuantityVector ceil(k);
  for (int i = 0; i < k; ++i) ceil[i] = budget / set.unit_cost(i) + 1;
  std::vector<QuantityVector> all = EnumerateSupplyVectors(set, ceil);
  double exact = 0.0;
  for (const QuantityVector& v : all) exact = std::max(exact, Dot(p, v));

  double greedy = Dot(p, set.MaximizeValue(p));
  EXPECT_LE(greedy, exact + 1e-9);
  // Density greedy for unbounded knapsack is at least 1/2 of optimal.
  EXPECT_GE(greedy, 0.5 * exact - 1e-9);
  if (k == 1) {
    EXPECT_DOUBLE_EQ(greedy, exact);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, GreedyVsExactTest,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace qa::market
