#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/vtime.h"
#include "workload/sinusoid.h"
#include "workload/trace.h"
#include "workload/uniform.h"
#include "workload/zipf_workload.h"

namespace qa::workload {
namespace {

using util::kMillisecond;
using util::kSecond;

TEST(TraceTest, SortAndMerge) {
  Trace a;
  a.Add({5 * kSecond, 0, 0, 1.0});
  a.Add({1 * kSecond, 0, 0, 1.0});
  a.SortByTime();
  EXPECT_EQ(a[0].time, 1 * kSecond);

  Trace b;
  b.Add({2 * kSecond, 1, 0, 1.0});
  Trace merged = Trace::Merge(a, b);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].time, 1 * kSecond);
  EXPECT_EQ(merged[1].time, 2 * kSecond);
  EXPECT_EQ(merged[2].time, 5 * kSecond);
}

TEST(TraceTest, ArrivalCountsBucketsPerClass) {
  Trace t;
  t.Add({100 * kMillisecond, 0, 0, 1.0});
  t.Add({200 * kMillisecond, 0, 0, 1.0});
  t.Add({600 * kMillisecond, 0, 0, 1.0});
  t.Add({100 * kMillisecond, 1, 0, 1.0});
  std::vector<int> counts =
      t.ArrivalCounts(0, 500 * kMillisecond, 1 * kSecond);
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 1);
}

TEST(TraceTest, CsvRoundTrip) {
  Trace original;
  original.Add({1500, 3, 7, 0.97});
  original.Add({2500, 1, 2, 1.03});
  std::ostringstream out;
  original.WriteCsv(out);
  std::istringstream in(out.str());
  auto loaded = Trace::ReadCsv(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].time, 1500);
  EXPECT_EQ((*loaded)[0].class_id, 3);
  EXPECT_EQ((*loaded)[0].origin, 7);
  EXPECT_NEAR((*loaded)[0].cost_jitter, 0.97, 1e-9);
}

TEST(TraceTest, CsvRejectsGarbage) {
  std::istringstream no_header("1,2,3,4\n");
  EXPECT_FALSE(Trace::ReadCsv(no_header).ok());
  std::istringstream bad_row("time_us,class,origin,cost_jitter\nnope\n");
  EXPECT_FALSE(Trace::ReadCsv(bad_row).ok());
}

TEST(SinusoidTest, ArrivalCountMatchesIntegratedRate) {
  util::Rng rng(42);
  // 20 s at 0.05 Hz: exactly one full period; mean rate = peak/2.
  Trace t = GenerateSinusoidClass(0, 10.0, 0.05, 0.0, 20 * kSecond, 1, 0.0,
                                  rng);
  // Expected arrivals = mean_rate * duration = 5 * 20 = 100.
  EXPECT_NEAR(static_cast<double>(t.size()), 100.0, 3.0);
}

TEST(SinusoidTest, RateOscillates) {
  util::Rng rng(42);
  Trace t = GenerateSinusoidClass(0, 20.0, 0.05, 0.0, 20 * kSecond, 1, 0.0,
                                  rng);
  // First quarter (sin rising from 0 to peak) must contain more arrivals
  // than the last quarter (sin falling through the trough).
  std::vector<int> counts = t.ArrivalCounts(0, 5 * kSecond, 20 * kSecond);
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_GT(counts[0], counts[2]);
}

TEST(SinusoidTest, TwoClassWorkloadShape) {
  SinusoidConfig config;
  config.frequency_hz = 0.05;
  config.q1_peak_rate = 20.0;
  config.duration = 40 * kSecond;
  config.num_origin_nodes = 10;
  util::Rng rng(42);
  Trace t = GenerateSinusoidWorkload(config, rng);

  int q1 = 0;
  int q2 = 0;
  for (const Arrival& a : t.arrivals()) {
    if (a.class_id == 0) ++q1;
    if (a.class_id == 1) ++q2;
    EXPECT_GE(a.origin, 0);
    EXPECT_LT(a.origin, 10);
    EXPECT_GE(a.cost_jitter, 0.95);
    EXPECT_LE(a.cost_jitter, 1.05);
  }
  // Q2 peaks at half Q1's rate => roughly half the arrivals.
  EXPECT_NEAR(static_cast<double>(q1) / q2, 2.0, 0.3);
}

TEST(SinusoidTest, MeanRateFormula) {
  SinusoidConfig config;
  config.q1_peak_rate = 20.0;
  EXPECT_DOUBLE_EQ(SinusoidMeanRate(config), 15.0);
}

TEST(SinusoidTest, PhaseShiftsThePeak) {
  util::Rng rng(42);
  // 0 vs 180 degrees: peaks in opposite halves of the period.
  Trace in_phase = GenerateSinusoidClass(0, 20.0, 0.05, 90.0, 20 * kSecond,
                                         1, 0.0, rng);
  Trace anti_phase = GenerateSinusoidClass(0, 20.0, 0.05, 270.0,
                                           20 * kSecond, 1, 0.0, rng);
  std::vector<int> a = in_phase.ArrivalCounts(0, 10 * kSecond, 20 * kSecond);
  std::vector<int> b =
      anti_phase.ArrivalCounts(0, 10 * kSecond, 20 * kSecond);
  EXPECT_GT(a[0], a[1]);  // peak in first half
  EXPECT_LT(b[0], b[1]);  // peak in second half
}

TEST(ZipfWorkloadTest, SolveUnitHitsTargetMean) {
  int n = 1000;
  double alpha = 1.0;
  util::VDuration cap = 30000 * kMillisecond;
  util::VDuration target = 2000 * kMillisecond;
  double unit = SolveZipfUnit(target, cap, n, alpha);
  // Empirical check via sampling.
  util::Rng rng(42);
  double sum = 0.0;
  const int samples = 50000;
  for (int i = 0; i < samples; ++i) {
    double gap = std::min(unit * static_cast<double>(rng.Zipf(n, alpha)),
                          static_cast<double>(cap));
    sum += gap;
  }
  EXPECT_NEAR(sum / samples, static_cast<double>(target),
              static_cast<double>(target) * 0.05);
}

TEST(ZipfWorkloadTest, GeneratesRequestedQueryCount) {
  ZipfWorkloadConfig config;
  config.num_queries = 2000;
  config.num_classes = 20;
  config.mean_interarrival = 500 * kMillisecond;
  util::Rng rng(42);
  Trace t = GenerateZipfWorkload(config, rng);
  EXPECT_EQ(t.size(), 2000u);
  // Time-ordered.
  for (size_t i = 1; i < t.size(); ++i) {
    EXPECT_GE(t[i].time, t[i - 1].time);
  }
}

TEST(ZipfWorkloadTest, AllClassesPresent) {
  ZipfWorkloadConfig config;
  config.num_queries = 5000;
  config.num_classes = 20;
  config.mean_interarrival = 200 * kMillisecond;
  util::Rng rng(42);
  Trace t = GenerateZipfWorkload(config, rng);
  std::vector<int> counts(20, 0);
  for (const Arrival& a : t.arrivals()) {
    ASSERT_GE(a.class_id, 0);
    ASSERT_LT(a.class_id, 20);
    ++counts[static_cast<size_t>(a.class_id)];
  }
  for (int c = 0; c < 20; ++c) EXPECT_GT(counts[static_cast<size_t>(c)], 0);
}

TEST(ZipfWorkloadTest, GapsRespectCap) {
  ZipfWorkloadConfig config;
  config.num_queries = 500;
  config.num_classes = 1;
  config.mean_interarrival = 10000 * kMillisecond;
  config.max_interarrival = 30000 * kMillisecond;
  util::Rng rng(42);
  Trace t = GenerateZipfWorkload(config, rng);
  for (size_t i = 1; i < t.size(); ++i) {
    EXPECT_LE(t[i].time - t[i - 1].time, config.max_interarrival);
  }
}

TEST(ZipfWorkloadTest, SmallerMeanIsHeavierLoad) {
  ZipfWorkloadConfig heavy;
  heavy.num_queries = 1000;
  heavy.mean_interarrival = 100 * kMillisecond;
  ZipfWorkloadConfig light = heavy;
  light.mean_interarrival = 5000 * kMillisecond;
  util::Rng rng1(42);
  util::Rng rng2(42);
  Trace t_heavy = GenerateZipfWorkload(heavy, rng1);
  Trace t_light = GenerateZipfWorkload(light, rng2);
  EXPECT_LT(t_heavy.LastArrivalTime(), t_light.LastArrivalTime());
}

TEST(UniformWorkloadTest, MeanInterarrivalApproximatelyCorrect) {
  UniformWorkloadConfig config;
  config.num_queries = 5000;
  config.mean_interarrival = 300 * kMillisecond;
  config.classes = {0, 1, 2};
  util::Rng rng(42);
  Trace t = GenerateUniformWorkload(config, rng);
  ASSERT_EQ(t.size(), 5000u);
  double mean_gap = static_cast<double>(t.LastArrivalTime()) / 5000.0;
  EXPECT_NEAR(mean_gap, static_cast<double>(config.mean_interarrival),
              static_cast<double>(config.mean_interarrival) * 0.05);
}

TEST(PoissonWorkloadTest, MeanRateCorrect) {
  PoissonWorkloadConfig config;
  config.num_queries = 5000;
  config.mean_interarrival = 100 * kMillisecond;
  util::Rng rng(42);
  Trace t = GeneratePoissonWorkload(config, rng);
  double mean_gap = static_cast<double>(t.LastArrivalTime()) / 5000.0;
  EXPECT_NEAR(mean_gap, static_cast<double>(config.mean_interarrival),
              static_cast<double>(config.mean_interarrival) * 0.05);
}

}  // namespace
}  // namespace qa::workload
