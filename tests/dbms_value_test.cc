#include <gtest/gtest.h>

#include "dbms/table.h"
#include "dbms/value.h"

namespace qa::dbms {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(int64_t{42}).type(), ValueType::kInt);
  EXPECT_EQ(Value(int64_t{42}).AsInt(), 42);
  EXPECT_EQ(Value(2.5).type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value(std::string("hi")).type(), ValueType::kString);
  EXPECT_EQ(Value(std::string("hi")).AsString(), "hi");
}

TEST(ValueTest, IntPromotesToDouble) {
  EXPECT_DOUBLE_EQ(Value(int64_t{3}).AsDouble(), 3.0);
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(Value(int64_t{3}), Value(3.0));
  EXPECT_NE(Value(int64_t{3}), Value(3.5));
}

TEST(ValueTest, NullComparisons) {
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value(int64_t{0}));
  // NULL sorts first.
  EXPECT_LT(Value::Null(), Value(int64_t{-100}));
  EXPECT_FALSE(Value(int64_t{1}) < Value::Null());
}

TEST(ValueTest, Ordering) {
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_LT(Value(1.5), Value(int64_t{2}));
  EXPECT_LT(Value(std::string("a")), Value(std::string("b")));
  EXPECT_GE(Value(int64_t{5}), Value(5.0));
  EXPECT_GT(Value(int64_t{6}), Value(5.0));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{3}).Hash(), Value(3.0).Hash());
  EXPECT_EQ(Value(std::string("x")).Hash(), Value(std::string("x")).Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{7}).ToString(), "7");
  EXPECT_EQ(Value(std::string("abc")).ToString(), "abc");
}

TEST(HashKeyTest, KeyColumnsOnly) {
  Row a = {Value(int64_t{1}), Value(int64_t{2})};
  Row b = {Value(int64_t{1}), Value(int64_t{99})};
  EXPECT_EQ(HashKey(a, {0}), HashKey(b, {0}));
  EXPECT_NE(HashKey(a, {0, 1}), HashKey(b, {0, 1}));
}

TEST(SchemaTest, FindColumn) {
  Schema schema({{"id", ValueType::kInt}, {"name", ValueType::kString}});
  EXPECT_EQ(schema.FindColumn("id"), 0);
  EXPECT_EQ(schema.FindColumn("name"), 1);
  EXPECT_EQ(schema.FindColumn("missing"), -1);
}

TEST(SchemaTest, Concat) {
  Schema a({{"x", ValueType::kInt}});
  Schema b({{"y", ValueType::kDouble}});
  Schema c = Schema::Concat(a, b);
  EXPECT_EQ(c.num_columns(), 2);
  EXPECT_EQ(c.column(1).name, "y");
}

TEST(TableTest, AppendValidates) {
  Table t("t", Schema({{"id", ValueType::kInt}, {"v", ValueType::kDouble}}));
  EXPECT_TRUE(t.Append({Value(int64_t{1}), Value(2.0)}).ok());
  // Int into double column is fine.
  EXPECT_TRUE(t.Append({Value(int64_t{1}), Value(int64_t{2})}).ok());
  // NULL fits anywhere.
  EXPECT_TRUE(t.Append({Value::Null(), Value::Null()}).ok());
  // Arity mismatch.
  EXPECT_FALSE(t.Append({Value(int64_t{1})}).ok());
  // Type mismatch.
  EXPECT_FALSE(t.Append({Value(std::string("x")), Value(1.0)}).ok());
  EXPECT_EQ(t.num_rows(), 3);
}

TEST(TableTest, EstimatedBytesGrowsWithRows) {
  Table t("t", Schema({{"id", ValueType::kInt}}));
  int64_t empty = t.EstimatedBytes();
  ASSERT_TRUE(t.Append({Value(int64_t{1})}).ok());
  EXPECT_GT(t.EstimatedBytes(), empty);
}

}  // namespace
}  // namespace qa::dbms
