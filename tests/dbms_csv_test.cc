#include <sstream>

#include <gtest/gtest.h>

#include "dbms/csv.h"

namespace qa::dbms {
namespace {

// GCC 12 emits spurious -Wmaybe-uninitialized / -Wfree-nonheap-object
// diagnostics when a braced list of std::variant-backed Values is copied
// out of the initializer_list (libstdc++ variant inlining; fixed in GCC
// 13). Every element below is fully constructed, so silence just this
// function on the affected compiler.
#if defined(__GNUC__) && !defined(__clang__) && __GNUC__ < 13
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wfree-nonheap-object"
#endif
Table SampleTable() {
  Table t("t", Schema({{"id", ValueType::kInt},
                       {"name", ValueType::kString},
                       {"score", ValueType::kDouble}}));
  t.AppendUnchecked({Value(int64_t{1}), Value(std::string("ann")),
                     Value(1.5)});
  t.AppendUnchecked({Value(int64_t{2}), Value(std::string("b,ob")),
                     Value(2.5)});
  t.AppendUnchecked({Value(int64_t{3}), Value::Null(), Value::Null()});
  t.AppendUnchecked({Value(int64_t{4}), Value(std::string("say \"hi\"")),
                     Value(4.0)});
  return t;
}
#if defined(__GNUC__) && !defined(__clang__) && __GNUC__ < 13
#pragma GCC diagnostic pop
#endif

TEST(CsvTest, SplitPlainLine) {
  auto fields = SplitCsvLine("a,b,c");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvTest, SplitQuotedFields) {
  auto fields = SplitCsvLine("1,\"x,y\",\"he said \"\"hi\"\"\",");
  ASSERT_TRUE(fields.ok());
  ASSERT_EQ(fields->size(), 4u);
  EXPECT_EQ((*fields)[1], "x,y");
  EXPECT_EQ((*fields)[2], "he said \"hi\"");
  EXPECT_EQ((*fields)[3], "");
}

TEST(CsvTest, SplitUnterminatedQuoteFails) {
  EXPECT_FALSE(SplitCsvLine("a,\"oops").ok());
}

TEST(CsvTest, RoundTripPreservesData) {
  Table original = SampleTable();
  std::ostringstream out;
  WriteCsv(original, out);

  std::istringstream in(out.str());
  auto loaded = ReadCsv("t", in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_rows(), original.num_rows());
  ASSERT_EQ(loaded->schema().num_columns(), 3);
  EXPECT_EQ(loaded->schema().column(0).type, ValueType::kInt);
  EXPECT_EQ(loaded->schema().column(1).type, ValueType::kString);
  EXPECT_EQ(loaded->schema().column(2).type, ValueType::kDouble);
  for (int64_t r = 0; r < original.num_rows(); ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ(loaded->row(r)[static_cast<size_t>(c)],
                original.row(r)[static_cast<size_t>(c)])
          << "row " << r << " col " << c;
    }
  }
}

TEST(CsvTest, TypeInference) {
  std::istringstream in("a,b,c\n1,2.5,x\n2,3.5,y\n");
  auto table = ReadCsv("t", in);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->schema().column(0).type, ValueType::kInt);
  EXPECT_EQ(table->schema().column(1).type, ValueType::kDouble);
  EXPECT_EQ(table->schema().column(2).type, ValueType::kString);
}

TEST(CsvTest, NullLeadingFieldsSkipInference) {
  // First row has an empty (NULL) field: inference uses the next row.
  std::istringstream in("a\n\n42\n");
  auto table = ReadCsv("t", in);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->schema().column(0).type, ValueType::kInt);
  // Note: blank lines are skipped entirely, so only the 42 row loads.
  EXPECT_EQ(table->num_rows(), 1);
}

TEST(CsvTest, Errors) {
  std::istringstream empty("");
  EXPECT_FALSE(ReadCsv("t", empty).ok());

  std::istringstream ragged("a,b\n1\n");
  EXPECT_FALSE(ReadCsv("t", ragged).ok());

  std::istringstream bad_int("a\n1\nx\n");
  EXPECT_FALSE(ReadCsv("t", bad_int).ok());
}

}  // namespace
}  // namespace qa::dbms
