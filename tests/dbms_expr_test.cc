#include <gtest/gtest.h>

#include "dbms/expr.h"

namespace qa::dbms {
namespace {

Row TestRow() {
  return {Value(int64_t{5}), Value(2.5), Value(std::string("abc")),
          Value::Null()};
}

TEST(ExprTest, ColumnAndLiteral) {
  Row row = TestRow();
  EXPECT_EQ(Expr::Column(0)->Eval(row).AsInt(), 5);
  EXPECT_EQ(Expr::Literal(Value(int64_t{7}))->Eval(row).AsInt(), 7);
}

TEST(ExprTest, Comparisons) {
  Row row = TestRow();
  auto cmp = [&](CompareOp op, int col, Value lit) {
    return Expr::Compare(op, Expr::Column(col),
                         Expr::Literal(std::move(lit)))
        ->EvalBool(row);
  };
  EXPECT_TRUE(cmp(CompareOp::kEq, 0, Value(int64_t{5})));
  EXPECT_FALSE(cmp(CompareOp::kEq, 0, Value(int64_t{4})));
  EXPECT_TRUE(cmp(CompareOp::kNe, 0, Value(int64_t{4})));
  EXPECT_TRUE(cmp(CompareOp::kLt, 1, Value(3.0)));
  EXPECT_TRUE(cmp(CompareOp::kLe, 1, Value(2.5)));
  EXPECT_TRUE(cmp(CompareOp::kGt, 0, Value(int64_t{4})));
  EXPECT_TRUE(cmp(CompareOp::kGe, 0, Value(int64_t{5})));
  EXPECT_TRUE(cmp(CompareOp::kEq, 2, Value(std::string("abc"))));
}

TEST(ExprTest, NullPropagatesAndIsFalse) {
  Row row = TestRow();
  ExprPtr e = Expr::Compare(CompareOp::kEq, Expr::Column(3),
                            Expr::Literal(Value(int64_t{1})));
  EXPECT_TRUE(e->Eval(row).is_null());
  EXPECT_FALSE(e->EvalBool(row));
}

TEST(ExprTest, LogicalOps) {
  Row row = TestRow();
  ExprPtr t = Expr::Compare(CompareOp::kEq, Expr::Column(0),
                            Expr::Literal(Value(int64_t{5})));
  ExprPtr f = Expr::Compare(CompareOp::kEq, Expr::Column(0),
                            Expr::Literal(Value(int64_t{6})));
  EXPECT_TRUE(Expr::And(t, t)->EvalBool(row));
  EXPECT_FALSE(Expr::And(t, f)->EvalBool(row));
  EXPECT_TRUE(Expr::Or(f, t)->EvalBool(row));
  EXPECT_FALSE(Expr::Or(f, f)->EvalBool(row));
}

TEST(ExprTest, AndAllEmptyIsNull) {
  EXPECT_EQ(Expr::AndAll({}), nullptr);
  ExprPtr single = Expr::Literal(Value(int64_t{1}));
  EXPECT_EQ(Expr::AndAll({single}), single);
}

TEST(ExprTest, SelectivityHeuristics) {
  ExprPtr eq = Expr::Compare(CompareOp::kEq, Expr::Column(0),
                             Expr::Literal(Value(int64_t{1})));
  ExprPtr lt = Expr::Compare(CompareOp::kLt, Expr::Column(0),
                             Expr::Literal(Value(int64_t{1})));
  EXPECT_DOUBLE_EQ(eq->EstimatedSelectivity(), 0.1);
  EXPECT_DOUBLE_EQ(lt->EstimatedSelectivity(), 0.3);
  EXPECT_DOUBLE_EQ(Expr::And(eq, lt)->EstimatedSelectivity(), 0.03);
  EXPECT_DOUBLE_EQ(Expr::Or(eq, lt)->EstimatedSelectivity(), 0.4);
}

TEST(ExprTest, RemapColumns) {
  Row row = {Value(int64_t{10}), Value(int64_t{20})};
  ExprPtr e = Expr::Compare(CompareOp::kEq, Expr::Column(0),
                            Expr::Literal(Value(int64_t{20})));
  // Remap column 0 -> 1.
  ExprPtr remapped = e->RemapColumns({1, 0});
  EXPECT_FALSE(e->EvalBool(row));
  EXPECT_TRUE(remapped->EvalBool(row));
}

TEST(ExprTest, ToStringReadable) {
  Schema schema({{"id", ValueType::kInt}});
  ExprPtr e = Expr::Compare(CompareOp::kGe, Expr::Column(0),
                            Expr::Literal(Value(int64_t{3})));
  EXPECT_EQ(e->ToString(&schema), "(id >= 3)");
  EXPECT_EQ(e->ToString(nullptr), "($0 >= 3)");
}

}  // namespace
}  // namespace qa::dbms
