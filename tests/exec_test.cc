#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "allocation/factory.h"
#include "allocation/solicitation.h"
#include "exec/experiment_runner.h"
#include "exec/thread_pool.h"
#include "obs/recorder.h"
#include "sim/scenario.h"
#include "workload/sinusoid.h"

namespace qa::exec {
namespace {

using util::kMillisecond;
using util::kSecond;

// ------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> done;
  for (int i = 0; i < 100; ++i) {
    done.push_back(pool.Submit([&count] { ++count; }));
  }
  for (auto& f : done) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++count;
      });
    }
    // No explicit wait: ~ThreadPool must run everything already queued.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, TasksRunOnWorkerThreads) {
  ThreadPool pool(3);
  std::mutex mu;
  std::set<std::thread::id> ids;
  std::vector<std::future<void>> done;
  for (int i = 0; i < 64; ++i) {
    done.push_back(pool.Submit([&] {
      std::lock_guard<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
    }));
  }
  for (auto& f : done) f.get();
  EXPECT_GE(ids.size(), 1u);
  EXPECT_LE(ids.size(), 3u);
  EXPECT_EQ(ids.count(std::this_thread::get_id()), 0u);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  std::future<void> bad =
      pool.Submit([] { throw std::runtime_error("boom"); });
  std::future<void> good = pool.Submit([] {});
  EXPECT_THROW(bad.get(), std::runtime_error);
  // A throwing task must not take its worker down.
  good.get();
  std::future<void> after = pool.Submit([] {});
  after.get();
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(ThreadPool::ResolveThreadCount(4), 4);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(1), 1);
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1);
  EXPECT_GE(ThreadPool::ResolveThreadCount(-3), 1);
}

// ------------------------------------------------------- ExperimentRunner

class RunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Rng rng(kSeed);
    sim::TwoClassConfig scenario;
    scenario.num_nodes = 10;
    model_ = sim::BuildTwoClassCostModel(scenario, rng);

    workload::SinusoidConfig workload;
    workload.frequency_hz = 0.05;
    workload.duration = 10 * kSecond;
    workload.num_origin_nodes = scenario.num_nodes;
    workload.q1_peak_rate = 30.0;
    util::Rng wl_rng(kSeed + 1);
    trace_ = workload::GenerateSinusoidWorkload(workload, wl_rng);
  }

  /// A small fig4-style grid: every registered mechanism x two seeds.
  std::vector<RunSpec> MakeGrid() const {
    std::vector<RunSpec> specs;
    for (uint64_t seed : {kSeed, kSeed + 7}) {
      for (const std::string& name : allocation::AllMechanismNames()) {
        RunSpec spec;
        spec.cost_model = model_.get();
        spec.mechanism = name;
        spec.trace = &trace_;
        spec.period = 500 * kMillisecond;
        spec.seed = seed;
        spec.config.max_retries = 5000;
        specs.push_back(std::move(spec));
      }
    }
    return specs;
  }

  static constexpr uint64_t kSeed = 42;
  std::unique_ptr<query::MatrixCostModel> model_;
  workload::Trace trace_;
};

void ExpectIdenticalMetrics(const sim::SimMetrics& a,
                            const sim::SimMetrics& b, size_t cell) {
  SCOPED_TRACE("grid cell " + std::to_string(cell));
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.bounced, b.bounced);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.solicited, b.solicited);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.assigned, b.assigned);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.total_busy_time, b.total_busy_time);
  EXPECT_EQ(a.node_completed, b.node_completed);
  EXPECT_EQ(a.node_last_idle, b.node_last_idle);
  // Bitwise-equal response aggregates: same completions in the same order.
  EXPECT_EQ(a.response_time_ms.count(), b.response_time_ms.count());
  EXPECT_EQ(a.MeanResponseMs(), b.MeanResponseMs());
  EXPECT_EQ(a.response_time_ms.Percentile(95),
            b.response_time_ms.Percentile(95));
}

TEST_F(RunnerTest, ParallelGridMatchesSerialCellForCell) {
  std::vector<RunSpec> specs = MakeGrid();
  std::vector<RunResult> serial = ExperimentRunner(1).Run(specs);
  std::vector<RunResult> parallel = ExperimentRunner(8).Run(specs);
  ASSERT_EQ(serial.size(), specs.size());
  ASSERT_EQ(parallel.size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    ExpectIdenticalMetrics(serial[i].metrics, parallel[i].metrics, i);
  }
  // Sanity: the grid actually simulated something.
  EXPECT_GT(serial[0].metrics.completed, 0);
}

TEST_F(RunnerTest, ParallelRunIsRepeatable) {
  std::vector<RunSpec> specs = MakeGrid();
  std::vector<RunResult> first = ExperimentRunner(8).Run(specs);
  std::vector<RunResult> second = ExperimentRunner(8).Run(specs);
  for (size_t i = 0; i < specs.size(); ++i) {
    ExpectIdenticalMetrics(first[i].metrics, second[i].metrics, i);
  }
}

TEST_F(RunnerTest, ResultsComeBackInSubmissionOrder) {
  // Mechanism-specific fingerprints (message counts differ per mechanism)
  // land at the submitted indices even when workers finish out of order.
  std::vector<RunSpec> specs = MakeGrid();
  std::vector<RunResult> serial = ExperimentRunner(1).Run(specs);
  std::vector<RunResult> parallel = ExperimentRunner(4).Run(specs);
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(serial[i].metrics.messages, parallel[i].metrics.messages)
        << "cell " << i;
  }
}

TEST_F(RunnerTest, ProbeRunsOnTheRunAllocator) {
  RunSpec spec;
  spec.cost_model = model_.get();
  spec.mechanism = "Greedy";
  spec.trace = &trace_;
  spec.seed = kSeed;
  spec.probe = [](const allocation::Allocator& alloc) {
    return alloc.name() == "Greedy" ? 1.0 : -1.0;
  };
  RunResult result = RunSpecOnce(spec);
  EXPECT_EQ(result.probe, 1.0);
}

TEST_F(RunnerTest, UnknownMechanismAbortsLoudly) {
  RunSpec spec;
  spec.cost_model = model_.get();
  spec.mechanism = "QA-NTypo";
  spec.trace = &trace_;
  EXPECT_DEATH(RunSpecOnce(spec), "unknown allocation mechanism 'QA-NTypo'");
}

// ------------------------------------------------------- Solicitation

/// Runs one QA-NT cell with the given solicitation policy, streaming its
/// JSONL trace to a temp file, and returns (metrics, trace bytes).
std::pair<sim::SimMetrics, std::string> RunTraced(
    const query::CostModel& model, const workload::Trace& trace,
    allocation::SolicitationConfig solicitation, uint64_t seed,
    const std::string& tag) {
  std::string path = ::testing::TempDir() + "/solicitation_" + tag +
                     ".jsonl";
  sim::SimMetrics metrics;
  {
    util::StatusOr<std::unique_ptr<obs::Recorder>> recorder =
        obs::Recorder::OpenFile(path);
    EXPECT_TRUE(recorder.ok()) << recorder.status();
    RunSpec spec;
    spec.cost_model = &model;
    spec.mechanism = "QA-NT";
    spec.trace = &trace;
    spec.period = 500 * kMillisecond;
    spec.seed = seed;
    spec.config.max_retries = 5000;
    spec.config.solicitation = solicitation;
    spec.config.recorder = recorder.value().get();
    metrics = RunSpecOnce(spec).metrics;
    recorder.value()->Finish();
  }
  std::ifstream in(path, std::ios::binary);
  std::ostringstream bytes;
  bytes << in.rdbuf();
  return {std::move(metrics), std::move(bytes).str()};
}

TEST_F(RunnerTest, FanoutCoveringEveryNodeIsByteIdenticalToBroadcast) {
  // uniform-sample(d >= num_nodes) clamps to the full candidate list and
  // draws nothing, so a seeded run must reproduce broadcast exactly —
  // metrics AND trace bytes (bar the meta line, which names the policy).
  allocation::SolicitationConfig broadcast;
  allocation::SolicitationConfig covering;
  covering.policy = allocation::SolicitationPolicy::kUniformSample;
  covering.fanout = 10;  // == num_nodes of the fixture federation
  auto [broadcast_metrics, broadcast_trace] =
      RunTraced(*model_, trace_, broadcast, kSeed, "broadcast");
  auto [covering_metrics, covering_trace] =
      RunTraced(*model_, trace_, covering, kSeed, "covering");
  ExpectIdenticalMetrics(broadcast_metrics, covering_metrics, 0);
  // Byte-compare everything after the first (meta) line.
  auto body = [](const std::string& bytes) {
    return bytes.substr(bytes.find('\n') + 1);
  };
  EXPECT_EQ(body(broadcast_trace), body(covering_trace));
  EXPECT_NE(broadcast_trace, covering_trace)
      << "meta line should name the differing solicitation policies";
}

TEST_F(RunnerTest, OversizedFanoutAlsoReproducesBroadcast) {
  allocation::SolicitationConfig broadcast;
  allocation::SolicitationConfig oversized;
  oversized.policy = allocation::SolicitationPolicy::kUniformSample;
  oversized.fanout = 10000;  // far beyond num_nodes: clamps to broadcast
  auto [broadcast_metrics, broadcast_trace] =
      RunTraced(*model_, trace_, broadcast, kSeed, "broadcast2");
  auto [oversized_metrics, oversized_trace] =
      RunTraced(*model_, trace_, oversized, kSeed, "oversized");
  ExpectIdenticalMetrics(broadcast_metrics, oversized_metrics, 0);
}

TEST_F(RunnerTest, EverySolicitationPolicyIsThreadCountInvariant) {
  // A grid of QA-NT cells across all three policies (sampled ones at a
  // fanout small enough to actually sample) x two seeds must come back
  // byte-identical at threads 1 vs 8: per-arrival SplitMix64 streams are
  // pure functions of (seed, arrival index), never of scheduling.
  std::vector<allocation::SolicitationConfig> configs(3);
  configs[1].policy = allocation::SolicitationPolicy::kUniformSample;
  configs[1].fanout = 3;
  configs[2].policy = allocation::SolicitationPolicy::kStratifiedSample;
  configs[2].fanout = 3;
  std::vector<RunSpec> specs;
  for (uint64_t seed : {kSeed, kSeed + 7}) {
    for (const allocation::SolicitationConfig& config : configs) {
      RunSpec spec;
      spec.cost_model = model_.get();
      spec.mechanism = "QA-NT";
      spec.trace = &trace_;
      spec.period = 500 * kMillisecond;
      spec.seed = seed;
      spec.config.max_retries = 5000;
      spec.config.solicitation = config;
      specs.push_back(std::move(spec));
    }
  }
  std::vector<RunResult> serial = ExperimentRunner(1).Run(specs);
  std::vector<RunResult> parallel = ExperimentRunner(8).Run(specs);
  for (size_t i = 0; i < specs.size(); ++i) {
    ExpectIdenticalMetrics(serial[i].metrics, parallel[i].metrics, i);
  }
  // Sampling must actually have reduced the fanout in the sampled cells.
  EXPECT_LT(serial[1].metrics.solicited, serial[0].metrics.solicited);
  EXPECT_GT(serial[1].metrics.completed, 0);
}

TEST_F(RunnerTest, SampledTraceIsByteIdenticalAcrossRepeatRuns) {
  allocation::SolicitationConfig sampled;
  sampled.policy = allocation::SolicitationPolicy::kStratifiedSample;
  sampled.fanout = 4;
  auto [first_metrics, first_trace] =
      RunTraced(*model_, trace_, sampled, kSeed, "repeat_a");
  auto [second_metrics, second_trace] =
      RunTraced(*model_, trace_, sampled, kSeed, "repeat_b");
  ExpectIdenticalMetrics(first_metrics, second_metrics, 0);
  EXPECT_EQ(first_trace, second_trace);
}

// ------------------------------------------------------- Sharded core

/// Runs one traced cell under the given shard/thread layout and returns
/// (metrics, full trace bytes). shards == 1 is the inline reference; any
/// other count routes through the sharded fork-join core with a pool of
/// `threads` workers.
std::pair<sim::SimMetrics, std::string> RunShardLayout(
    const query::CostModel& model, const workload::Trace& trace,
    const std::string& mechanism, uint64_t seed, int shards, int threads,
    const std::string& tag) {
  std::string path = ::testing::TempDir() + "/shard_layout_" + tag +
                     ".jsonl";
  sim::SimMetrics metrics;
  {
    ThreadPool pool(threads);
    PoolRunner runner(&pool);
    util::StatusOr<std::unique_ptr<obs::Recorder>> recorder =
        obs::Recorder::OpenFile(path);
    EXPECT_TRUE(recorder.ok()) << recorder.status();
    RunSpec spec;
    spec.cost_model = &model;
    spec.mechanism = mechanism;
    spec.trace = &trace;
    spec.period = 500 * kMillisecond;
    spec.seed = seed;
    spec.config.max_retries = 5000;
    spec.config.recorder = recorder.value().get();
    spec.config.shards = shards;
    if (shards > 1) spec.config.runner = &runner;
    metrics = RunSpecOnce(spec).metrics;
    recorder.value()->Finish();
  }
  std::ifstream in(path, std::ios::binary);
  std::ostringstream bytes;
  bytes << in.rdbuf();
  return {std::move(metrics), std::move(bytes).str()};
}

TEST_F(RunnerTest, ShardedRunIsByteIdenticalAtAnyShardAndThreadCount) {
  // The tentpole contract: metrics AND trace bytes must be a pure function
  // of the scenario, never of the shard count or the pool width. Compare
  // the inline reference against shards {1, 4} x threads {1, 8}.
  auto [reference_metrics, reference_trace] =
      RunShardLayout(*model_, trace_, "QA-NT", kSeed, 1, 1, "ref");
  int case_id = 0;
  for (int shards : {1, 4}) {
    for (int threads : {1, 8}) {
      SCOPED_TRACE("shards " + std::to_string(shards) + " threads " +
                   std::to_string(threads));
      auto [metrics, trace_bytes] = RunShardLayout(
          *model_, trace_, "QA-NT", kSeed, shards, threads,
          "s" + std::to_string(shards) + "t" + std::to_string(threads));
      ExpectIdenticalMetrics(reference_metrics, metrics,
                             static_cast<size_t>(case_id++));
      EXPECT_EQ(reference_trace, trace_bytes);
    }
  }
  EXPECT_GT(reference_metrics.completed, 0);
}

TEST_F(RunnerTest, StateReadingMechanismFallsBackToInlineAndStaysExact) {
  // Greedy reads live node state at allocation time, so the federation
  // must refuse to shard it (reads_node_state routes it inline) — and the
  // run with shards requested must still be byte-identical to shards=1.
  auto [reference_metrics, reference_trace] =
      RunShardLayout(*model_, trace_, "Greedy", kSeed, 1, 1, "greedy_ref");
  auto [sharded_metrics, sharded_trace] =
      RunShardLayout(*model_, trace_, "Greedy", kSeed, 4, 8, "greedy_s4");
  ExpectIdenticalMetrics(reference_metrics, sharded_metrics, 0);
  EXPECT_EQ(reference_trace, sharded_trace);
  EXPECT_GT(reference_metrics.completed, 0);
}

TEST_F(RunnerTest, SingleShardedSpecBorrowsTheRunnersPool) {
  // ExperimentRunner's nested-parallelism budget: a one-cell grid that
  // asks for shards gets the runner's own pool as its intra-run runner,
  // and the result still matches the serial inline reference.
  RunSpec spec;
  spec.cost_model = model_.get();
  spec.mechanism = "QA-NT";
  spec.trace = &trace_;
  spec.period = 500 * kMillisecond;
  spec.seed = kSeed;
  spec.config.max_retries = 5000;
  std::vector<RunResult> inline_result = ExperimentRunner(1).Run({spec});
  spec.config.shards = 4;
  std::vector<RunResult> sharded_result = ExperimentRunner(8).Run({spec});
  ASSERT_EQ(inline_result.size(), 1u);
  ASSERT_EQ(sharded_result.size(), 1u);
  ExpectIdenticalMetrics(inline_result[0].metrics, sharded_result[0].metrics,
                         0);
}

}  // namespace
}  // namespace qa::exec
