#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "allocation/factory.h"
#include "exec/experiment_runner.h"
#include "exec/thread_pool.h"
#include "sim/scenario.h"
#include "workload/sinusoid.h"

namespace qa::exec {
namespace {

using util::kMillisecond;
using util::kSecond;

// ------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> done;
  for (int i = 0; i < 100; ++i) {
    done.push_back(pool.Submit([&count] { ++count; }));
  }
  for (auto& f : done) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++count;
      });
    }
    // No explicit wait: ~ThreadPool must run everything already queued.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, TasksRunOnWorkerThreads) {
  ThreadPool pool(3);
  std::mutex mu;
  std::set<std::thread::id> ids;
  std::vector<std::future<void>> done;
  for (int i = 0; i < 64; ++i) {
    done.push_back(pool.Submit([&] {
      std::lock_guard<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
    }));
  }
  for (auto& f : done) f.get();
  EXPECT_GE(ids.size(), 1u);
  EXPECT_LE(ids.size(), 3u);
  EXPECT_EQ(ids.count(std::this_thread::get_id()), 0u);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  std::future<void> bad =
      pool.Submit([] { throw std::runtime_error("boom"); });
  std::future<void> good = pool.Submit([] {});
  EXPECT_THROW(bad.get(), std::runtime_error);
  // A throwing task must not take its worker down.
  good.get();
  std::future<void> after = pool.Submit([] {});
  after.get();
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(ThreadPool::ResolveThreadCount(4), 4);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(1), 1);
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1);
  EXPECT_GE(ThreadPool::ResolveThreadCount(-3), 1);
}

// ------------------------------------------------------- ExperimentRunner

class RunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Rng rng(kSeed);
    sim::TwoClassConfig scenario;
    scenario.num_nodes = 10;
    model_ = sim::BuildTwoClassCostModel(scenario, rng);

    workload::SinusoidConfig workload;
    workload.frequency_hz = 0.05;
    workload.duration = 10 * kSecond;
    workload.num_origin_nodes = scenario.num_nodes;
    workload.q1_peak_rate = 30.0;
    util::Rng wl_rng(kSeed + 1);
    trace_ = workload::GenerateSinusoidWorkload(workload, wl_rng);
  }

  /// A small fig4-style grid: every registered mechanism x two seeds.
  std::vector<RunSpec> MakeGrid() const {
    std::vector<RunSpec> specs;
    for (uint64_t seed : {kSeed, kSeed + 7}) {
      for (const std::string& name : allocation::AllMechanismNames()) {
        RunSpec spec;
        spec.cost_model = model_.get();
        spec.mechanism = name;
        spec.trace = &trace_;
        spec.period = 500 * kMillisecond;
        spec.seed = seed;
        spec.config.max_retries = 5000;
        specs.push_back(std::move(spec));
      }
    }
    return specs;
  }

  static constexpr uint64_t kSeed = 42;
  std::unique_ptr<query::MatrixCostModel> model_;
  workload::Trace trace_;
};

void ExpectIdenticalMetrics(const sim::SimMetrics& a,
                            const sim::SimMetrics& b, size_t cell) {
  SCOPED_TRACE("grid cell " + std::to_string(cell));
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.bounced, b.bounced);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.assigned, b.assigned);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.total_busy_time, b.total_busy_time);
  EXPECT_EQ(a.node_completed, b.node_completed);
  EXPECT_EQ(a.node_last_idle, b.node_last_idle);
  // Bitwise-equal response aggregates: same completions in the same order.
  EXPECT_EQ(a.response_time_ms.count(), b.response_time_ms.count());
  EXPECT_EQ(a.MeanResponseMs(), b.MeanResponseMs());
  EXPECT_EQ(a.response_time_ms.Percentile(95),
            b.response_time_ms.Percentile(95));
}

TEST_F(RunnerTest, ParallelGridMatchesSerialCellForCell) {
  std::vector<RunSpec> specs = MakeGrid();
  std::vector<RunResult> serial = ExperimentRunner(1).Run(specs);
  std::vector<RunResult> parallel = ExperimentRunner(8).Run(specs);
  ASSERT_EQ(serial.size(), specs.size());
  ASSERT_EQ(parallel.size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    ExpectIdenticalMetrics(serial[i].metrics, parallel[i].metrics, i);
  }
  // Sanity: the grid actually simulated something.
  EXPECT_GT(serial[0].metrics.completed, 0);
}

TEST_F(RunnerTest, ParallelRunIsRepeatable) {
  std::vector<RunSpec> specs = MakeGrid();
  std::vector<RunResult> first = ExperimentRunner(8).Run(specs);
  std::vector<RunResult> second = ExperimentRunner(8).Run(specs);
  for (size_t i = 0; i < specs.size(); ++i) {
    ExpectIdenticalMetrics(first[i].metrics, second[i].metrics, i);
  }
}

TEST_F(RunnerTest, ResultsComeBackInSubmissionOrder) {
  // Mechanism-specific fingerprints (message counts differ per mechanism)
  // land at the submitted indices even when workers finish out of order.
  std::vector<RunSpec> specs = MakeGrid();
  std::vector<RunResult> serial = ExperimentRunner(1).Run(specs);
  std::vector<RunResult> parallel = ExperimentRunner(4).Run(specs);
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(serial[i].metrics.messages, parallel[i].metrics.messages)
        << "cell " << i;
  }
}

TEST_F(RunnerTest, ProbeRunsOnTheRunAllocator) {
  RunSpec spec;
  spec.cost_model = model_.get();
  spec.mechanism = "Greedy";
  spec.trace = &trace_;
  spec.seed = kSeed;
  spec.probe = [](const allocation::Allocator& alloc) {
    return alloc.name() == "Greedy" ? 1.0 : -1.0;
  };
  RunResult result = RunSpecOnce(spec);
  EXPECT_EQ(result.probe, 1.0);
}

TEST_F(RunnerTest, UnknownMechanismAbortsLoudly) {
  RunSpec spec;
  spec.cost_model = model_.get();
  spec.mechanism = "QA-NTypo";
  spec.trace = &trace_;
  EXPECT_DEATH(RunSpecOnce(spec), "unknown allocation mechanism 'QA-NTypo'");
}

}  // namespace
}  // namespace qa::exec
