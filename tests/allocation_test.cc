#include <cmath>
#include <map>
#include <memory>

#include <gtest/gtest.h>

#include "allocation/baselines.h"
#include "allocation/factory.h"
#include "allocation/markov.h"
#include "allocation/qa_nt_allocator.h"
#include "query/cost_model.h"
#include "util/vtime.h"

namespace qa::allocation {
namespace {

using util::kMillisecond;

/// A hand-rolled context for unit tests: fixed backlogs/work.
class FakeContext : public AllocationContext {
 public:
  FakeContext(const query::CostModel* model) : model_(model) {
    backlog_.resize(static_cast<size_t>(model->num_nodes()), 0);
    work_.resize(static_cast<size_t>(model->num_nodes()), 0.0);
    cumulative_.resize(static_cast<size_t>(model->num_nodes()), 0.0);
  }

  int num_nodes() const override { return model_->num_nodes(); }
  const query::CostModel& cost_model() const override { return *model_; }
  util::VDuration NodeBacklog(catalog::NodeId node) const override {
    return backlog_[static_cast<size_t>(node)];
  }
  double NodeQueuedWork(catalog::NodeId node) const override {
    return work_[static_cast<size_t>(node)];
  }
  double NodeCumulativeWork(catalog::NodeId node) const override {
    return cumulative_[static_cast<size_t>(node)];
  }
  util::VTime now() const override { return 0; }

  void SetBacklog(catalog::NodeId node, util::VDuration backlog) {
    backlog_[static_cast<size_t>(node)] = backlog;
  }
  void SetWork(catalog::NodeId node, double work) {
    work_[static_cast<size_t>(node)] = work;
  }
  void SetCumulativeWork(catalog::NodeId node, double work) {
    cumulative_[static_cast<size_t>(node)] = work;
  }

 private:
  const query::CostModel* model_;
  std::vector<util::VDuration> backlog_;
  std::vector<double> work_;
  std::vector<double> cumulative_;
};

std::unique_ptr<query::MatrixCostModel> ThreeNodeModel() {
  // Class 0 runs on all three nodes with different speeds; class 1 only on
  // node 2.
  auto model = std::make_unique<query::MatrixCostModel>(2, 3);
  model->SetCost(0, 0, 100 * kMillisecond);
  model->SetCost(0, 1, 200 * kMillisecond);
  model->SetCost(0, 2, 400 * kMillisecond);
  model->SetCost(1, 2, 300 * kMillisecond);
  return model;
}

workload::Arrival MakeArrival(query::QueryClassId k) {
  workload::Arrival a;
  a.time = 0;
  a.class_id = k;
  a.origin = 0;
  return a;
}

TEST(RandomAllocatorTest, OnlyPicksFeasibleNodes) {
  auto model = ThreeNodeModel();
  FakeContext ctx(model.get());
  RandomAllocator alloc(42);
  for (int i = 0; i < 50; ++i) {
    AllocationDecision d = alloc.Allocate(MakeArrival(1), ctx);
    EXPECT_EQ(d.node, 2);  // only node 2 can run class 1
    EXPECT_EQ(d.messages, 1);
  }
}

TEST(RandomAllocatorTest, SpreadsAcrossFeasibleNodes) {
  auto model = ThreeNodeModel();
  FakeContext ctx(model.get());
  RandomAllocator alloc(42);
  std::map<catalog::NodeId, int> counts;
  for (int i = 0; i < 300; ++i) {
    ++counts[alloc.Allocate(MakeArrival(0), ctx).node];
  }
  EXPECT_EQ(counts.size(), 3u);
  for (const auto& [node, count] : counts) EXPECT_GT(count, 50);
}

TEST(RoundRobinAllocatorTest, CyclesThroughNodes) {
  auto model = ThreeNodeModel();
  FakeContext ctx(model.get());
  RoundRobinAllocator alloc;
  EXPECT_EQ(alloc.Allocate(MakeArrival(0), ctx).node, 0);
  EXPECT_EQ(alloc.Allocate(MakeArrival(0), ctx).node, 1);
  EXPECT_EQ(alloc.Allocate(MakeArrival(0), ctx).node, 2);
  EXPECT_EQ(alloc.Allocate(MakeArrival(0), ctx).node, 0);
}

TEST(RoundRobinAllocatorTest, PerClassCursors) {
  auto model = ThreeNodeModel();
  FakeContext ctx(model.get());
  RoundRobinAllocator alloc;
  EXPECT_EQ(alloc.Allocate(MakeArrival(0), ctx).node, 0);
  // Class 1 has its own cursor and only one feasible node.
  EXPECT_EQ(alloc.Allocate(MakeArrival(1), ctx).node, 2);
  EXPECT_EQ(alloc.Allocate(MakeArrival(0), ctx).node, 1);
}

TEST(GreedyAllocatorTest, PicksLeastCompletionTime) {
  auto model = ThreeNodeModel();
  FakeContext ctx(model.get());
  GreedyAllocator alloc(42);
  // Idle: node 0 is fastest for class 0.
  EXPECT_EQ(alloc.Allocate(MakeArrival(0), ctx).node, 0);
  // Give node 0 a big backlog: node 1 becomes best (200 < 1000+100).
  ctx.SetBacklog(0, 1000 * kMillisecond);
  EXPECT_EQ(alloc.Allocate(MakeArrival(0), ctx).node, 1);
}

TEST(BlindGreedyAllocatorTest, IgnoresBacklog) {
  auto model = ThreeNodeModel();
  FakeContext ctx(model.get());
  BlindGreedyAllocator alloc(42, /*randomization=*/0.0);
  // Node 0 is fastest for class 0, and stays chosen even with a big
  // backlog: the queue-blind variant only sees execution-time estimates.
  EXPECT_EQ(alloc.Allocate(MakeArrival(0), ctx).node, 0);
  ctx.SetBacklog(0, 1000 * kMillisecond);
  EXPECT_EQ(alloc.Allocate(MakeArrival(0), ctx).node, 0);
}

TEST(BlindGreedyAllocatorTest, RandomizationSpreadsChoices) {
  auto model = ThreeNodeModel();
  FakeContext ctx(model.get());
  BlindGreedyAllocator alloc(42, /*randomization=*/0.6);
  std::map<catalog::NodeId, int> counts;
  for (int i = 0; i < 300; ++i) {
    ++counts[alloc.Allocate(MakeArrival(0), ctx).node];
  }
  // With heavy noise the near-fastest node 1 is picked sometimes.
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], 0);
}

TEST(GreedyAllocatorTest, MessageCostCountsProbes) {
  auto model = ThreeNodeModel();
  FakeContext ctx(model.get());
  GreedyAllocator alloc(42);
  AllocationDecision d = alloc.Allocate(MakeArrival(0), ctx);
  EXPECT_EQ(d.messages, 2 * 3 + 1);
}

TEST(TwoProbesAllocatorTest, PicksLighterOfTwo) {
  auto model = ThreeNodeModel();
  FakeContext ctx(model.get());
  ctx.SetBacklog(0, 500 * kMillisecond);
  ctx.SetBacklog(1, 100 * kMillisecond);
  ctx.SetBacklog(2, 900 * kMillisecond);
  TwoRandomProbesAllocator alloc(42);
  // Over many draws the heaviest node (2) should be picked least often; it
  // is only chosen when the two sampled nodes are {2, heavier}, which never
  // happens since 2 is the heaviest — except pairs including only node 2
  // never exist... node 2 can be picked only if both probes hit... it
  // can't: any pair containing 2 has a lighter partner.
  for (int i = 0; i < 100; ++i) {
    AllocationDecision d = alloc.Allocate(MakeArrival(0), ctx);
    EXPECT_NE(d.node, 2);
  }
}

TEST(TwoProbesAllocatorTest, SingleFeasibleNodeShortCircuit) {
  auto model = ThreeNodeModel();
  FakeContext ctx(model.get());
  TwoRandomProbesAllocator alloc(42);
  AllocationDecision d = alloc.Allocate(MakeArrival(1), ctx);
  EXPECT_EQ(d.node, 2);
  EXPECT_EQ(d.messages, 1);
}

TEST(BnqrdAllocatorTest, BalancesCumulativeUsageNotTime) {
  auto model = ThreeNodeModel();
  FakeContext ctx(model.get());
  BnqrdAllocator alloc;
  // Node 2 (the slowest in time) has received the least usage so far:
  // BNQRD sends the query there even though node 0 would finish 4x faster.
  ctx.SetCumulativeWork(0, 100.0);
  ctx.SetCumulativeWork(1, 100.0);
  ctx.SetCumulativeWork(2, 10.0);
  EXPECT_EQ(alloc.Allocate(MakeArrival(0), ctx).node, 2);
}

TEST(LeastImbalanceAllocatorTest, MinimizesSpread) {
  auto model = ThreeNodeModel();
  FakeContext ctx(model.get());
  LeastImbalanceAllocator alloc;
  ctx.SetBacklog(0, 300 * kMillisecond);
  ctx.SetBacklog(1, 0);
  ctx.SetBacklog(2, 300 * kMillisecond);
  // Adding class 0 to node 1 (200 ms) keeps the spread smallest.
  EXPECT_EQ(alloc.Allocate(MakeArrival(0), ctx).node, 1);
}

TEST(QaNtAllocatorTest, AcceptsCheapestOffer) {
  auto model = ThreeNodeModel();
  FakeContext ctx(model.get());
  QaNtAllocator alloc(model.get(), 500 * kMillisecond);
  AllocationDecision d = alloc.Allocate(MakeArrival(0), ctx);
  EXPECT_EQ(d.node, 0);  // cheapest offering node
}

TEST(QaNtAllocatorTest, DeclinesWhenSupplyExhaustedThenRecovers) {
  // One node, one class, 400 ms cost, 500 ms period: supply is 1/period.
  auto model = std::make_unique<query::MatrixCostModel>(1, 1);
  model->SetCost(0, 0, 400 * kMillisecond);
  FakeContext ctx(model.get());
  QaNtAllocator alloc(model.get(), 500 * kMillisecond);

  EXPECT_EQ(alloc.Allocate(MakeArrival(0), ctx).node, 0);
  // Second request in the same period: declined.
  EXPECT_EQ(alloc.Allocate(MakeArrival(0), ctx).node, kNoNode);
  // New period: supply replenished.
  alloc.OnPeriodEnd(500 * kMillisecond);
  alloc.OnPeriodStart(500 * kMillisecond);
  EXPECT_EQ(alloc.Allocate(MakeArrival(0), ctx).node, 0);
}

TEST(QaNtAllocatorTest, EquitableSelectionSpreadsEarnings) {
  auto model = ThreeNodeModel();
  FakeContext ctx(model.get());
  QaNtAllocator cheapest(model.get(), 2000 * kMillisecond);
  QaNtAllocator equitable(model.get(), 2000 * kMillisecond, {},
                          QaNtAllocator::OfferSelection::kEquitable);
  // Several class-0 queries in one period: the cheapest policy keeps
  // hitting node 0 while it has supply; the equitable policy rotates.
  std::map<catalog::NodeId, int> cheap_counts;
  std::map<catalog::NodeId, int> fair_counts;
  for (int i = 0; i < 6; ++i) {
    ++cheap_counts[cheapest.Allocate(MakeArrival(0), ctx).node];
    ++fair_counts[equitable.Allocate(MakeArrival(0), ctx).node];
  }
  EXPECT_GE(cheap_counts[0], 4);  // node 0 dominates under cheapest
  EXPECT_GE(fair_counts.size(), 2u);  // equitable spreads
  // Earnings dispersion is lower under the equitable policy.
  auto cv = [](const QaNtAllocator& a) {
    double sum = 0.0;
    double sq = 0.0;
    for (int i = 0; i < a.num_nodes(); ++i) {
      double e = a.agent(i).earnings();
      sum += e;
      sq += e * e;
    }
    double mean = sum / a.num_nodes();
    double var = sq / a.num_nodes() - mean * mean;
    return mean > 0 ? std::sqrt(std::max(var, 0.0)) / mean : 0.0;
  };
  EXPECT_LE(cv(equitable), cv(cheapest) + 1e-9);
}

TEST(QaNtAllocatorTest, PropertiesRespectAutonomy) {
  auto model = ThreeNodeModel();
  QaNtAllocator alloc(model.get(), 500 * kMillisecond);
  MechanismProperties p = alloc.properties();
  EXPECT_TRUE(p.respects_autonomy);
  EXPECT_TRUE(p.distributed);
  EXPECT_FALSE(p.conflicts_with_query_optimization);
}

TEST(FactoryTest, CreatesEveryMechanism) {
  auto model = ThreeNodeModel();
  AllocatorParams params;
  params.cost_model = model.get();
  for (const std::string& name : AllMechanismNames()) {
    std::unique_ptr<Allocator> alloc = CreateAllocator(name, params);
    ASSERT_NE(alloc, nullptr) << name;
    EXPECT_EQ(alloc->name(), name);
  }
  EXPECT_NE(CreateAllocator("LeastImbalance", params), nullptr);
  EXPECT_NE(CreateAllocator("GreedyBlind", params), nullptr);
  EXPECT_EQ(CreateAllocator("NoSuchThing", params), nullptr);
}

TEST(FactoryTest, BaselinePropertiesMatchTable2) {
  auto model = ThreeNodeModel();
  AllocatorParams params;
  params.cost_model = model.get();
  // Table 2: Greedy/BNQRD/TwoProbes violate autonomy; Random/RoundRobin
  // respect it; all conflict with distributed query optimization except
  // QA-NT.
  auto greedy = CreateAllocator("Greedy", params);
  EXPECT_FALSE(greedy->properties().respects_autonomy);
  EXPECT_TRUE(greedy->properties().conflicts_with_query_optimization);
  auto random = CreateAllocator("Random", params);
  EXPECT_TRUE(random->properties().respects_autonomy);
  auto bnqrd = CreateAllocator("BNQRD", params);
  EXPECT_FALSE(bnqrd->properties().respects_autonomy);
}

TEST(AllocatorTest, NoFeasibleNodeReturnsNoNode) {
  auto model = std::make_unique<query::MatrixCostModel>(1, 2);
  // Class 0 evaluable nowhere.
  FakeContext ctx(model.get());
  RandomAllocator random(42);
  EXPECT_EQ(random.Allocate(MakeArrival(0), ctx).node, kNoNode);
  GreedyAllocator greedy(42);
  EXPECT_EQ(greedy.Allocate(MakeArrival(0), ctx).node, kNoNode);
  BnqrdAllocator bnqrd;
  EXPECT_EQ(bnqrd.Allocate(MakeArrival(0), ctx).node, kNoNode);
}

TEST(MarkovAllocatorTest, RoutingProbabilitiesValid) {
  auto model = ThreeNodeModel();
  MarkovAllocator alloc(model.get(), {2.0, 1.0}, 42);
  for (int k = 0; k < 2; ++k) {
    double sum = 0.0;
    for (catalog::NodeId j = 0; j < 3; ++j) {
      double p = alloc.RoutingProbability(k, j);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
      // No probability mass on infeasible nodes.
      if (!model->CanEvaluate(k, j)) {
        EXPECT_EQ(p, 0.0);
      }
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(MarkovAllocatorTest, FasterNodesGetLargerShare) {
  auto model = ThreeNodeModel();
  // Class 0 costs 100/200/400 ms on nodes 0/1/2: under queueing-optimal
  // routing node 0 must carry at least as much as node 2.
  MarkovAllocator alloc(model.get(), {4.0, 0.5}, 42);
  EXPECT_GE(alloc.RoutingProbability(0, 0),
            alloc.RoutingProbability(0, 2));
}

TEST(MarkovAllocatorTest, AllocatesOnlyFeasibleNodes) {
  auto model = ThreeNodeModel();
  MarkovAllocator alloc(model.get(), {2.0, 1.0}, 42);
  FakeContext ctx(model.get());
  for (int i = 0; i < 100; ++i) {
    AllocationDecision d = alloc.Allocate(MakeArrival(1), ctx);
    EXPECT_EQ(d.node, 2);  // the only node able to run class 1
    EXPECT_EQ(d.messages, 1);
  }
}

TEST(MarkovAllocatorTest, ZeroRateClassFallsBackToCheapest) {
  auto model = ThreeNodeModel();
  MarkovAllocator alloc(model.get(), {2.0, 0.0}, 42);
  FakeContext ctx(model.get());
  EXPECT_EQ(alloc.Allocate(MakeArrival(1), ctx).node, 2);
}

TEST(MarkovAllocatorTest, PropertiesMatchTable2) {
  auto model = ThreeNodeModel();
  MarkovAllocator alloc(model.get(), {1.0, 1.0}, 42);
  MechanismProperties p = alloc.properties();
  EXPECT_FALSE(p.distributed);
  EXPECT_FALSE(p.handles_dynamic_workload);
  EXPECT_FALSE(p.respects_autonomy);
}

TEST(OfflineNodeTest, MechanismsRouteAroundOfflineNodes) {
  // A context where node 0 (the fastest) is offline: probing mechanisms
  // must pick someone else.
  class OfflineContext : public FakeContext {
   public:
    using FakeContext::FakeContext;
    bool NodeOnline(catalog::NodeId node) const override {
      return node != 0;
    }
  };
  auto model = ThreeNodeModel();
  OfflineContext ctx(model.get());
  GreedyAllocator greedy(42);
  EXPECT_EQ(greedy.Allocate(MakeArrival(0), ctx).node, 1);
  QaNtAllocator qa_nt(model.get(), 500 * kMillisecond);
  EXPECT_EQ(qa_nt.Allocate(MakeArrival(0), ctx).node, 1);
  BnqrdAllocator bnqrd;
  EXPECT_NE(bnqrd.Allocate(MakeArrival(0), ctx).node, 0);
  // Random is blind to liveness: it will still pick node 0 sometimes (the
  // federation bounces those assignments).
  RandomAllocator random(42);
  bool picked_offline = false;
  for (int i = 0; i < 100; ++i) {
    if (random.Allocate(MakeArrival(0), ctx).node == 0) {
      picked_offline = true;
    }
  }
  EXPECT_TRUE(picked_offline);
}

}  // namespace
}  // namespace qa::allocation
