#include <gtest/gtest.h>

#include "market/tatonnement.h"
#include "util/vtime.h"

namespace qa::market {
namespace {

using util::kMillisecond;

TEST(TatonnementTest, SingleClassMatchesSupplyToDemand) {
  // Two nodes, one class costing 100 ms, period 1000 ms => each node can
  // supply up to 10; demand of 12 is satisfiable.
  CapacitySupplySet n1({100 * kMillisecond}, 1000 * kMillisecond);
  CapacitySupplySet n2({100 * kMillisecond}, 1000 * kMillisecond);
  std::vector<const SupplySet*> sets{&n1, &n2};

  TatonnementConfig config;
  config.tolerance = 0;
  TatonnementResult result =
      RunTatonnement(QuantityVector({12}), sets, config);
  // A single always-supplied class can never equal demand exactly (each
  // node supplies all-or-bulk); with one class the greedy supplies
  // budget/cost = 10 each => 20 > 12 => excess -8; price falls but supply
  // stays 10 while price > 0. Convergence to z == 0 is impossible, so the
  // run must hit the iteration cap without crashing.
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, config.max_iterations);
}

TEST(TatonnementTest, TwoClassMarketConverges) {
  // Fig. 1 instance with demand (4, 2) and budgets of 1000 ms. At the
  // initial equal prices N1 supplies only q2, so q1 is in excess demand;
  // as p1 rises (and p2 falls) N1 flips to (2 q1 + 2 q2) and together with
  // N2's (2 q1) the market clears exactly: s = (4, 2) = d.
  CapacitySupplySet n1({400 * kMillisecond, 100 * kMillisecond},
                       1000 * kMillisecond);
  CapacitySupplySet n2({450 * kMillisecond, 500 * kMillisecond},
                       1000 * kMillisecond);
  std::vector<const SupplySet*> sets{&n1, &n2};

  TatonnementConfig config;
  config.lambda = 0.02;
  config.max_iterations = 20000;
  config.tolerance = 0;
  TatonnementResult result =
      RunTatonnement(QuantityVector({4, 2}), sets, config);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.excess_demand[0], 0);
  EXPECT_EQ(result.excess_demand[1], 0);
  EXPECT_EQ(result.aggregate_supply, QuantityVector({4, 2}));
}

TEST(TatonnementTest, PricesRemainPositive) {
  CapacitySupplySet n1({10 * kMillisecond, 10 * kMillisecond},
                       1000 * kMillisecond);
  std::vector<const SupplySet*> sets{&n1};
  TatonnementConfig config;
  config.max_iterations = 500;
  // Demand far below what the node wants to supply: prices crash but must
  // stay at the floor, not go negative.
  TatonnementResult result =
      RunTatonnement(QuantityVector({1, 1}), sets, config);
  for (int k = 0; k < 2; ++k) {
    EXPECT_GE(result.prices[k], config.price_floor);
  }
}

TEST(TatonnementTest, ExcessDemandRaisesRelativePrice) {
  // Two classes, two specialist nodes. Class 0 is demanded heavily; its
  // price must end up above class 1's.
  CapacitySupplySet n1({100 * kMillisecond, 100 * kMillisecond},
                       1000 * kMillisecond);
  std::vector<const SupplySet*> sets{&n1};
  TatonnementConfig config;
  config.max_iterations = 200;
  TatonnementResult result =
      RunTatonnement(QuantityVector({50, 1}), sets, config);
  EXPECT_GT(result.prices[0], result.prices[1]);
}

TEST(TatonnementTest, LargerLambdaConvergesInFewerIterations) {
  CapacitySupplySet n1({400 * kMillisecond, 100 * kMillisecond},
                       1000 * kMillisecond);
  CapacitySupplySet n2({450 * kMillisecond, 500 * kMillisecond},
                       1000 * kMillisecond);
  std::vector<const SupplySet*> sets{&n1, &n2};

  TatonnementConfig slow;
  slow.lambda = 0.005;
  slow.max_iterations = 50000;
  slow.tolerance = 0;
  TatonnementConfig fast = slow;
  fast.lambda = 0.05;

  TatonnementResult r_slow =
      RunTatonnement(QuantityVector({4, 2}), sets, slow);
  TatonnementResult r_fast =
      RunTatonnement(QuantityVector({4, 2}), sets, fast);
  ASSERT_TRUE(r_slow.converged);
  ASSERT_TRUE(r_fast.converged);
  EXPECT_LT(r_fast.iterations, r_slow.iterations);
}

}  // namespace
}  // namespace qa::market
