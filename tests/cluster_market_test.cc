// Tests of the hierarchical two-tier market (DESIGN.md §12): ClusterPlan
// validation, the aggregate-supply ledger, hand-computed two-cluster
// routing, and the central equivalence anchor — a 1-cluster hierarchy
// reproduces flat QA-NT byte for byte (trace + metrics) at every
// shard/thread combination.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "allocation/cluster_market.h"
#include "allocation/cluster_plan.h"
#include "allocation/qa_nt_allocator.h"
#include "exec/experiment_runner.h"
#include "exec/thread_pool.h"
#include "market/cluster_supply.h"
#include "obs/recorder.h"
#include "obs/trace_reader.h"
#include "query/cost_model.h"
#include "sim/federation.h"
#include "sim/metrics_json.h"
#include "sim/scenario.h"
#include "util/rng.h"
#include "workload/sinusoid.h"

namespace qa::allocation {
namespace {

using util::kMillisecond;
using util::kSecond;

// --------------------------------------------------- ClusterPlan::Validate

TEST(ClusterPlanTest, DisabledPlanIsAlwaysValid) {
  ClusterPlan plan;  // disabled: clusters/top are ignored
  EXPECT_TRUE(plan.Validate(10).ok());
  plan.clusters = {{99}};  // garbage, but the plan is off
  EXPECT_TRUE(plan.Validate(10).ok());
  EXPECT_FALSE(plan.hierarchical());
}

TEST(ClusterPlanTest, EnabledPlanWithZeroClustersIsRejected) {
  ClusterPlan plan;
  plan.enabled = true;
  util::Status status = plan.Validate(4);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("zero clusters"), std::string::npos);
}

TEST(ClusterPlanTest, NodeInNoClusterIsRejected) {
  ClusterPlan plan;
  plan.enabled = true;
  plan.clusters = {{0, 1}, {3}};  // node 2 unplaced
  util::Status status = plan.Validate(4);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("no cluster"), std::string::npos);
}

TEST(ClusterPlanTest, NodeInTwoClustersIsRejected) {
  ClusterPlan plan;
  plan.enabled = true;
  plan.clusters = {{0, 1}, {1, 2, 3}};
  util::Status status = plan.Validate(4);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("more than one"), std::string::npos);
}

TEST(ClusterPlanTest, OutOfRangeMemberIsRejected) {
  ClusterPlan plan;
  plan.enabled = true;
  plan.clusters = {{0, 1, 2, 3}, {4}};
  EXPECT_FALSE(plan.Validate(4).ok());
  plan.clusters = {{0, 1, 2, -1}};
  EXPECT_FALSE(plan.Validate(4).ok());
}

TEST(ClusterPlanTest, BadTopTierFanoutIsRejected) {
  ClusterPlan plan;
  plan.enabled = true;
  plan.clusters = {{0, 1}, {2, 3}};
  plan.top.policy = SolicitationPolicy::kUniformSample;
  plan.top.fanout = 0;  // sampled top tier needs fanout >= 1
  util::Status status = plan.Validate(4);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("top tier"), std::string::npos);
}

TEST(ClusterPlanTest, EmptyClusterIsLegal) {
  ClusterPlan plan;
  plan.enabled = true;
  plan.clusters = {{0, 1, 2, 3}, {}};  // empty cluster: never offers
  EXPECT_TRUE(plan.Validate(4).ok());
  EXPECT_TRUE(plan.hierarchical());
}

TEST(ClusterPlanTest, UniformBuilderPartitionsEveryNode) {
  ClusterPlan plan = ClusterPlan::Uniform(10, 3, /*top_fanout=*/2);
  EXPECT_TRUE(plan.Validate(10).ok());
  EXPECT_EQ(plan.num_clusters(), 3);
  EXPECT_TRUE(plan.hierarchical());
  EXPECT_EQ(plan.top.policy, SolicitationPolicy::kUniformSample);
  EXPECT_EQ(plan.top.fanout, 2);
  size_t total = 0;
  for (const auto& members : plan.clusters) total += members.size();
  EXPECT_EQ(total, 10u);
  // top_fanout <= 0 selects top-tier broadcast.
  EXPECT_EQ(ClusterPlan::Uniform(10, 3, 0).top.policy,
            SolicitationPolicy::kBroadcast);
}

// ValidateConfig funnels plan validation: a federation run can never start
// on a malformed cluster plan at either tier.
TEST(ClusterPlanTest, ValidateConfigRejectsMalformedPlans) {
  sim::FederationConfig config;
  EXPECT_TRUE(sim::ValidateConfig(config, 4).ok());  // flat default

  config.cluster_plan.enabled = true;
  EXPECT_FALSE(sim::ValidateConfig(config, 4).ok());  // zero clusters

  config.cluster_plan.clusters = {{0, 1}, {2, 3}};
  EXPECT_TRUE(sim::ValidateConfig(config, 4).ok());

  config.cluster_plan.top.policy = SolicitationPolicy::kStratifiedSample;
  config.cluster_plan.top.fanout = -1;  // fanout <= 0 at the top tier
  EXPECT_FALSE(sim::ValidateConfig(config, 4).ok());
  config.cluster_plan.top.fanout = 1;
  EXPECT_TRUE(sim::ValidateConfig(config, 4).ok());

  // fanout <= 0 at the member tier is still rejected too.
  config.solicitation.policy = SolicitationPolicy::kUniformSample;
  config.solicitation.fanout = 0;
  EXPECT_FALSE(sim::ValidateConfig(config, 4).ok());
}

// -------------------------------------------------------- supply ledger

TEST(ClusterSupplyAgentTest, LedgerTracksPublishSellExhaust) {
  market::ClusterSupplyAgent agent(/*cluster=*/3, /*num_classes=*/2);
  EXPECT_EQ(agent.cluster(), 3);
  EXPECT_FALSE(agent.OnSolicited(0));  // nothing published yet

  market::QuantityVector aggregate(2);
  aggregate[0] = 2;
  aggregate[1] = 0;
  agent.Publish(aggregate);
  EXPECT_TRUE(agent.OnSolicited(0));
  EXPECT_FALSE(agent.OnSolicited(1));  // zero supply for class 1

  agent.OnSold(0);
  EXPECT_EQ(agent.remaining()[0], 1);
  EXPECT_EQ(agent.published()[0], 2);  // published is the period's plan
  agent.OnSold(0);
  EXPECT_FALSE(agent.OnSolicited(0));  // sold out
  EXPECT_EQ(agent.sold()[0], 2);

  agent.Publish(aggregate);  // next period restores the ledger
  EXPECT_TRUE(agent.OnSolicited(0));
  agent.MarkExhausted(0);  // tier-2 all-decline correction
  EXPECT_FALSE(agent.OnSolicited(0));

  const market::ClusterSupplyStats& stats = agent.stats();
  EXPECT_EQ(stats.publishes, 2);
  EXPECT_EQ(stats.top_requests, 6);
  EXPECT_EQ(stats.top_offers, 2);
  EXPECT_EQ(stats.top_declines, 4);
  EXPECT_EQ(stats.exhausted_marks, 1);
}

TEST(ClusterSupplyAgentTest, DefaultPlannedSupplyMatchesFreshAgent) {
  std::vector<util::VDuration> costs = {50 * kMillisecond,
                                        200 * kMillisecond};
  market::QaNtConfig config;
  market::QaNtAgent fresh(7, costs, 500 * kMillisecond, config);
  fresh.BeginPeriod();
  // The default plan is the fresh agent's eq.-4 plan, floored at 1 for
  // every evaluable class (budget-elastic admission accepts a first query
  // of any evaluable class, even into debt).
  market::QuantityVector plan =
      market::DefaultPlannedSupply(costs, 500 * kMillisecond, config);
  for (int k = 0; k < plan.num_classes(); ++k) {
    EXPECT_EQ(plan[k], std::max(fresh.planned_supply()[k],
                                market::Quantity{1}))
        << "class " << k;
  }
}

TEST(ClusterSupplyAgentTest, DefaultPlannedSupplyFloorsEvaluableClasses) {
  // Class 0 cannot fit in the budget (cost > budget) but is evaluable, so
  // the floor advertises 1; class 1 is infeasible and stays 0.
  std::vector<util::VDuration> costs = {
      800 * kMillisecond, market::CapacitySupplySet::kCannotEvaluate};
  market::QaNtConfig config;
  market::QuantityVector plan =
      market::DefaultPlannedSupply(costs, 500 * kMillisecond, config);
  EXPECT_EQ(plan[0], 1);
  EXPECT_EQ(plan[1], 0);
}

// ------------------------------------------------- two-cluster routing

/// Minimal read-only context (every node online, no live state).
class IdleContext : public AllocationContext {
 public:
  explicit IdleContext(const query::CostModel* model) : model_(model) {}
  int num_nodes() const override { return model_->num_nodes(); }
  const query::CostModel& cost_model() const override { return *model_; }
  util::VDuration NodeBacklog(catalog::NodeId) const override { return 0; }
  double NodeQueuedWork(catalog::NodeId) const override { return 0.0; }
  double NodeCumulativeWork(catalog::NodeId) const override { return 0.0; }
  util::VTime now() const override { return 0; }

 private:
  const query::CostModel* model_;
};

// Hand-computed routing over known aggregate supplies: with T = 500 ms and
// one class, cluster 0 = {node0: 100ms, node1: 50ms} publishes 5 + 10 = 15
// units, cluster 1 = {node2: 10ms, node3: 200ms} publishes 50 + 2 = 52.
// Both offer; cluster 1 quotes 10 ms < cluster 0's 50 ms, so the query
// routes to cluster 1 and lands on node 2 in the tier-2 auction.
TEST(ClusterMarketTest, RoutesToCheapestOfferingCluster) {
  query::MatrixCostModel model(/*num_classes=*/1, /*num_nodes=*/4);
  model.SetCost(0, 0, 100 * kMillisecond);
  model.SetCost(0, 1, 50 * kMillisecond);
  model.SetCost(0, 2, 10 * kMillisecond);
  model.SetCost(0, 3, 200 * kMillisecond);

  ClusterPlan plan;
  plan.enabled = true;
  plan.clusters = {{0, 1}, {2, 3}};  // top tier broadcasts by default
  ASSERT_TRUE(plan.Validate(4).ok());

  QaNtAllocator allocator(&model, 500 * kMillisecond, {},
                          QaNtAllocator::OfferSelection::kCheapest, {},
                          /*seed=*/1, plan);
  IdleContext context(&model);
  workload::Arrival arrival;
  arrival.class_id = 0;

  AllocationDecision decision = allocator.Allocate(arrival, context);
  EXPECT_EQ(decision.cluster, 1);
  EXPECT_EQ(decision.node, 2);
  EXPECT_EQ(decision.clusters_solicited, 2);
  EXPECT_EQ(decision.solicited, 2);
  // 2 messages per solicited sub-mediator + 2 per asked member + accept.
  EXPECT_EQ(decision.messages, 2 * 2 + 2 * 2 + 1);

  const ClusterMarket* market = allocator.cluster_market();
  ASSERT_NE(market, nullptr);
  EXPECT_EQ(market->Quote(0, 0), 50 * kMillisecond);
  EXPECT_EQ(market->Quote(1, 0), 10 * kMillisecond);
  EXPECT_EQ(market->agent(1).published()[0], 52);
  EXPECT_EQ(market->agent(1).remaining()[0], 51);  // one unit sold
  EXPECT_EQ(market->agent(1).sold()[0], 1);
  EXPECT_EQ(market->cluster_of(1), 0);
  EXPECT_EQ(market->cluster_of(3), 1);
}

// Once the preferred cluster's ledger runs dry the top market routes
// follow-up queries to the other cluster — no member messages are wasted
// on a cluster that published zero remaining supply.
TEST(ClusterMarketTest, ExhaustedClusterRoutesElsewhere) {
  query::MatrixCostModel model(/*num_classes=*/1, /*num_nodes=*/2);
  model.SetCost(0, 0, 100 * kMillisecond);  // cluster 0: supply 1
  model.SetCost(0, 1, 50 * kMillisecond);   // cluster 1: supply 2

  ClusterPlan plan;
  plan.enabled = true;
  plan.clusters = {{0}, {1}};
  QaNtAllocator allocator(&model, 100 * kMillisecond, {},
                          QaNtAllocator::OfferSelection::kCheapest, {},
                          /*seed=*/1, plan);
  IdleContext context(&model);
  workload::Arrival arrival;
  arrival.class_id = 0;

  // Two sales drain cluster 1's published aggregate of 2 units...
  EXPECT_EQ(allocator.Allocate(arrival, context).cluster, 1);
  EXPECT_EQ(allocator.Allocate(arrival, context).cluster, 1);
  EXPECT_EQ(allocator.cluster_market()->agent(1).remaining()[0], 0);
  // ...so the third query routes to cluster 0 without soliciting node 1.
  AllocationDecision third = allocator.Allocate(arrival, context);
  EXPECT_EQ(third.cluster, 0);
  EXPECT_EQ(third.node, 0);
}

// ------------------------------------------------ flat/hier equivalence

struct RunOutput {
  std::string trace;
  std::string metrics;
};

/// Runs a 12-node two-class federation under QA-NT/uniform-4, optionally
/// under a cluster plan, at the given shard/thread layout, and returns the
/// full trace bytes plus the metrics JSON.
RunOutput RunScenario(const ClusterPlan& plan, int shards, int threads) {
  util::Rng rng(11);
  sim::TwoClassConfig scenario;
  scenario.num_nodes = 12;
  auto model = sim::BuildTwoClassCostModel(scenario, rng);

  workload::SinusoidConfig workload;
  workload.q1_peak_rate = 30.0;
  workload.frequency_hz = 0.5;
  workload.duration = 2 * kSecond;
  workload.num_origin_nodes = 12;
  util::Rng wl_rng(12);
  workload::Trace trace = workload::GenerateSinusoidWorkload(workload, wl_rng);

  RunOutput out;
  std::ostringstream sink;
  {
    exec::ThreadPool pool(threads);
    exec::PoolRunner runner(&pool);
    obs::Recorder recorder(&sink);
    exec::RunSpec spec;
    spec.cost_model = model.get();
    spec.mechanism = "QA-NT";
    spec.trace = &trace;
    spec.period = 500 * kMillisecond;
    spec.seed = 11;
    spec.config.solicitation.policy = SolicitationPolicy::kUniformSample;
    spec.config.solicitation.fanout = 4;
    spec.config.cluster_plan = plan;
    spec.config.recorder = &recorder;
    spec.config.shards = shards;
    if (threads > 1 || shards > 1) spec.config.runner = &runner;
    exec::RunResult result = exec::RunSpecOnce(spec);
    recorder.Finish();
    out.metrics = sim::MetricsToJson(result.metrics).Dump();
  }
  out.trace = std::move(sink).str();
  return out;
}

// The equivalence anchor: a 1-cluster hierarchy is the flat market — same
// trace bytes, same metrics — at every shard/thread combination. This is
// what guarantees that merely enabling the plan feature can never perturb
// a federation with nothing to cluster.
TEST(HierarchyEquivalenceTest, OneClusterHierarchyIsByteIdenticalToFlat) {
  ClusterPlan one_cluster;
  one_cluster.enabled = true;
  one_cluster.clusters.resize(1);
  for (catalog::NodeId node = 0; node < 12; ++node) {
    one_cluster.clusters[0].push_back(node);
  }
  one_cluster.top.policy = SolicitationPolicy::kUniformSample;
  one_cluster.top.fanout = 2;

  RunOutput flat = RunScenario(ClusterPlan{}, /*shards=*/1, /*threads=*/1);
  ASSERT_GT(flat.trace.size(), 0u);
  for (int shards : {1, 4}) {
    for (int threads : {1, 8}) {
      RunOutput hier = RunScenario(one_cluster, shards, threads);
      EXPECT_EQ(hier.trace, flat.trace)
          << "1-cluster hierarchy diverged from flat QA-NT at shards="
          << shards << " threads=" << threads;
      EXPECT_EQ(hier.metrics, flat.metrics)
          << "metrics diverged at shards=" << shards
          << " threads=" << threads;
    }
  }
}

// The genuinely hierarchical run must itself be placement-independent:
// identical bytes at every shard/thread layout (the two-stage dispatch
// lives on the mediator lane, so sharding stays an execution detail).
TEST(HierarchyEquivalenceTest, ThreeClusterRunIsByteIdenticalAcrossShards) {
  ClusterPlan plan = ClusterPlan::Uniform(12, 3, /*top_fanout=*/2);
  RunOutput inline_run = RunScenario(plan, /*shards=*/1, /*threads=*/1);
  ASSERT_GT(inline_run.trace.size(), 0u);

  // A hierarchical run actually is different from the flat market.
  RunOutput flat = RunScenario(ClusterPlan{}, /*shards=*/1, /*threads=*/1);
  EXPECT_NE(inline_run.trace, flat.trace);

  for (int shards : {1, 4}) {
    for (int threads : {1, 8}) {
      if (shards == 1 && threads == 1) continue;
      RunOutput other = RunScenario(plan, shards, threads);
      EXPECT_EQ(other.trace, inline_run.trace)
          << "hierarchical run diverged at shards=" << shards
          << " threads=" << threads;
      EXPECT_EQ(other.metrics, inline_run.metrics);
    }
  }

  // The hierarchical trace carries the v5 cluster observability: meta
  // cluster fields, per-attempt cluster routing, and snapshot records.
  std::istringstream stream(inline_run.trace);
  util::StatusOr<obs::ParsedTrace> parsed = obs::ParsedTrace::Parse(stream);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->meta.clusters, 3);
  EXPECT_EQ(parsed->meta.top_fanout, 2);
  EXPECT_GT(parsed->clusters.size(), 0u);
  bool saw_routed_assign = false;
  for (const obs::EventRecord& event : parsed->events) {
    if (event.kind == obs::EventRecord::Kind::kAssign &&
        event.cluster >= 0) {
      saw_routed_assign = true;
      EXPECT_GT(event.clusters_asked, 0);
    }
  }
  EXPECT_TRUE(saw_routed_assign);
}

}  // namespace
}  // namespace qa::allocation
