// Locks the qa_lint rule engine: one fixture per shipped rule violating
// it exactly once (asserting rule ID and position), the allow()
// suppression contract, scope exemptions, and a self-check that the real
// tree is clean — the in-process twin of CI's `qa_lint src bench tools
// tests`.

#include "qa_lint/lint.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace qa::lint {
namespace {

/// Convenience: lint `content` as if it lived at `path`.
std::vector<Finding> Lint(std::string_view path, std::string_view content,
                          const Options& options = {}) {
  return LintFile(path, content, options);
}

/// True if any finding carries `rule`.
bool Has(const std::vector<Finding>& findings, std::string_view rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

TEST(LintCatalogTest, EveryRuleHasIdSummaryRationale) {
  ASSERT_FALSE(AllRules().empty());
  for (const Rule& rule : AllRules()) {
    EXPECT_TRUE(std::string(rule.id).rfind("QA-", 0) == 0) << rule.id;
    EXPECT_NE(std::string(rule.summary), "");
    EXPECT_NE(std::string(rule.rationale), "");
    EXPECT_STREQ(RuleRationale(rule.id), rule.rationale);
  }
  EXPECT_EQ(RuleRationale("QA-NOPE-999"), nullptr);
}

// ---------------------------------------------------------------------------
// QA-DET-001
// ---------------------------------------------------------------------------

TEST(QaDet001Test, FlagsRandCallWithPosition) {
  std::vector<Finding> findings = Lint("src/sim/fixture.cc",
                                       "int Draw() {\n"
                                       "  return rand();\n"
                                       "}\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "QA-DET-001");
  EXPECT_EQ(findings[0].file, "src/sim/fixture.cc");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[0].column, 10);
}

TEST(QaDet001Test, FlagsStdTimeButNotMemberTime) {
  EXPECT_TRUE(Has(Lint("src/sim/f.cc", "long T() { return std::time(0); }\n"),
                  "QA-DET-001"));
  // Member access and declarations are someone else's `time`.
  EXPECT_TRUE(
      Lint("src/sim/f.cc", "long T(Clock c) { return c.time(); }\n").empty());
  EXPECT_TRUE(
      Lint("src/sim/f.cc", "void T() { util::VTime time(0); }\n").empty());
}

TEST(QaDet001Test, IgnoresStringsCommentsAndMacroBodies) {
  EXPECT_TRUE(Lint("src/sim/f.cc",
                   "// rand() in a comment\n"
                   "const char* kDoc = \"call rand() for chaos\";\n"
                   "#define CHAOS() rand()\n")
                  .empty());
}

TEST(QaDet001Test, AllowDirectiveSuppresses) {
  EXPECT_TRUE(Lint("src/sim/f.cc",
                   "int Draw() {\n"
                   "  return rand();  // qa-lint: allow(QA-DET-001)\n"
                   "}\n")
                  .empty());
  EXPECT_TRUE(Lint("src/sim/f.cc",
                   "int Draw() {\n"
                   "  // qa-lint: allow(QA-DET-001)\n"
                   "  return rand();\n"
                   "}\n")
                  .empty());
  // The wrong ID does not suppress.
  EXPECT_TRUE(Has(Lint("src/sim/f.cc",
                       "int Draw() {\n"
                       "  return rand();  // qa-lint: allow(QA-NUM-001)\n"
                       "}\n"),
                  "QA-DET-001"));
}

TEST(QaDet001Test, FlagsChronoClocksOutsideMonotonicClock) {
  std::vector<Finding> findings =
      Lint("bench/fixture.cc",
           "#include <chrono>\n"
           "int64_t Now() {\n"
           "  return std::chrono::steady_clock::now().time_since_epoch()"
           ".count();\n"
           "}\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "QA-DET-001");
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_NE(findings[0].message.find("steady_clock"), std::string::npos);
  EXPECT_TRUE(Has(Lint("src/sim/f.cc",
                       "auto T() { return std::chrono::system_clock::now(); "
                       "}\n"),
                  "QA-DET-001"));
  EXPECT_TRUE(
      Has(Lint("tools/f.cc",
               "using C = std::chrono::high_resolution_clock;\n"),
          "QA-DET-001"));
}

TEST(QaDet001Test, MonotonicClockIsTheWhitelistedClockSite) {
  std::string fixture =
      "int64_t MonotonicClock::NowNanos() {\n"
      "  return std::chrono::steady_clock::now().time_since_epoch()"
      ".count();\n"
      "}\n";
  EXPECT_TRUE(Lint("src/util/monotonic_clock.cc", fixture).empty());
  EXPECT_TRUE(Lint("src/util/monotonic_clock.h", fixture).empty());
  // ...and only that site: the same code anywhere else in util is flagged.
  EXPECT_TRUE(Has(Lint("src/util/other_clock.cc", fixture), "QA-DET-001"));
}

// ---------------------------------------------------------------------------
// QA-DET-002
// ---------------------------------------------------------------------------

TEST(QaDet002Test, FlagsEngineOutsideRngAndPositions) {
  std::vector<Finding> findings =
      Lint("src/workload/fixture.cc",
           "#include <random>\n"
           "double Jitter() {\n"
           "  std::mt19937 gen;\n"
           "  return 0.5;\n"
           "}\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "QA-DET-002");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(QaDet002Test, RngItselfIsExempt) {
  EXPECT_TRUE(
      Lint("src/util/rng.cc", "std::mt19937_64 engine_;\n").empty());
  EXPECT_TRUE(Has(Lint("src/util/other.cc", "std::mt19937_64 engine_;\n"),
                  "QA-DET-002"));
}

TEST(QaDet002Test, FlagsRandomDevice) {
  EXPECT_TRUE(Has(
      Lint("bench/fixture.cc", "unsigned S() { return std::random_device{}(); }\n"),
      "QA-DET-002"));
}

// ---------------------------------------------------------------------------
// QA-DET-003
// ---------------------------------------------------------------------------

TEST(QaDet003Test, FlagsRangeForOverUnorderedMap) {
  std::vector<Finding> findings =
      Lint("src/sim/fixture.cc",
           "#include <unordered_map>\n"
           "std::unordered_map<int, double> loads_;"
           "  // qa-lint: allow(QA-SHD-001)\n"
           "double Sum() {\n"
           "  double total = 0;\n"
           "  for (const auto& [node, load] : loads_) total += load;\n"
           "  return total;\n"
           "}\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "QA-DET-003");
  EXPECT_EQ(findings[0].line, 5);
}

TEST(QaDet003Test, FlagsIteratorWalk) {
  EXPECT_TRUE(Has(Lint("src/market/fixture.cc",
                       "std::unordered_set<int> seen_;\n"
                       "auto First() { return seen_.begin(); }\n"),
                  "QA-DET-003"));
}

TEST(QaDet003Test, LookupOnlyAndOtherDirsAreFine) {
  // Point lookups don't depend on iteration order.
  EXPECT_TRUE(Lint("src/sim/fixture.cc",
                   "std::unordered_map<int, double> loads_;"
                   "  // qa-lint: allow(QA-SHD-001)\n"
                   "double At(int k) { return loads_.at(k); }\n")
                  .empty());
  // dbms is not a sim path; its unordered iteration is not this rule's
  // business.
  EXPECT_TRUE(Lint("src/dbms/fixture.cc",
                   "std::unordered_map<int, int> groups_;\n"
                   "int N() { int n = 0; for (auto& g : groups_) ++n; "
                   "return n; }\n")
                  .empty());
}

// ---------------------------------------------------------------------------
// QA-NUM-001
// ---------------------------------------------------------------------------

TEST(QaNum001Test, FlagsLiteralCompare) {
  std::vector<Finding> findings =
      Lint("src/market/fixture.cc",
           "bool Converged(double excess) {\n"
           "  return excess == 0.0;\n"
           "}\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "QA-NUM-001");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(QaNum001Test, FlagsDeclaredDoubleIdentifiers) {
  EXPECT_TRUE(Has(Lint("src/market/fixture.cc",
                       "bool Same(double a, double b) { return a == b; }\n"),
                  "QA-NUM-001"));
}

TEST(QaNum001Test, IntCompareAndExemptScopesAreFine) {
  EXPECT_TRUE(
      Lint("src/market/f.cc", "bool Z(int n) { return n == 0; }\n").empty());
  std::string fixture = "bool Same(double a, double b) { return a == b; }\n";
  EXPECT_TRUE(Lint("src/util/mathutil.cc", fixture).empty());
  EXPECT_TRUE(Lint("tests/some_test.cc", fixture).empty());
}

TEST(QaNum001Test, OperatorEqualsDeclarationIsNotACompare) {
  EXPECT_TRUE(Lint("src/market/fixture.h",
                   "struct V {\n"
                   "  double operator[](int k) const;\n"
                   "  friend bool operator==(const V& a, const V& b) = "
                   "default;\n"
                   "};\n")
                  .empty());
}

// ---------------------------------------------------------------------------
// QA-NUM-002
// ---------------------------------------------------------------------------

TEST(QaNum002Test, FlagsFloatInMarketCode) {
  std::vector<Finding> findings = Lint(
      "src/market/fixture.cc", "float lambda = 0.5f;  // price step\n");
  // The declaration; the 0.5f literal is not a compare so only one
  // finding.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "QA-NUM-002");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_EQ(findings[0].column, 1);
}

TEST(QaNum002Test, DoubleAndOtherDirsAreFine) {
  EXPECT_TRUE(Lint("src/market/f.cc", "double lambda = 0.5;\n").empty());
  EXPECT_TRUE(Lint("src/obs/f.cc", "float ok_here = 1.0f;\n").empty());
}

// ---------------------------------------------------------------------------
// QA-OBS-001
// ---------------------------------------------------------------------------

constexpr char kKindSwitch[] =
    "std::string_view EventKindName(EventRecord::Kind kind) {\n"
    "  switch (kind) {\n"
    "    case EventRecord::Kind::kArrival:\n"
    "      return \"arrival\";\n"
    "    case EventRecord::Kind::kEclipse:\n"
    "      return \"eclipse\";\n"
    "  }\n"
    "  return \"?\";\n"
    "}\n";

TEST(QaObs001Test, FlagsUndocumentedKind) {
  Options options;
  options.schema_doc = "kinds: `arrival` is documented, eclipse is not.";
  std::vector<Finding> findings =
      Lint("src/obs/trace_schema.cc", kKindSwitch, options);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "QA-OBS-001");
  EXPECT_EQ(findings[0].line, 6);
  EXPECT_NE(findings[0].message.find("eclipse"), std::string::npos);
}

TEST(QaObs001Test, DocumentedKindsAreClean) {
  Options options;
  options.schema_doc = "| `arrival` | `eclipse` |";
  EXPECT_TRUE(
      Lint("src/obs/trace_schema.cc", kKindSwitch, options).empty());
}

TEST(QaObs001Test, OnlyTraceSchemaCcIsChecked) {
  Options options;
  options.schema_doc = "nothing documented";
  EXPECT_TRUE(Lint("src/obs/other.cc", kKindSwitch, options).empty());
}

// ---------------------------------------------------------------------------
// QA-OBS-002
// ---------------------------------------------------------------------------

TEST(QaObs002Test, FlagsBareProbe) {
  std::vector<Finding> findings =
      Lint("src/sim/fixture.cc",
           "void Tick() {\n"
           "  recorder_->Count(\"ticks\");\n"
           "}\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "QA-OBS-002");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(QaObs002Test, GatedProbesAreClean) {
  // Block gate.
  EXPECT_TRUE(Lint("src/sim/fixture.cc",
                   "void Tick() {\n"
                   "  QA_OBS(recorder_) {\n"
                   "    recorder_->Count(\"ticks\");\n"
                   "    recorder_->Gauge(\"load\", 0.5);\n"
                   "  }\n"
                   "}\n")
                  .empty());
  // Single-statement gate.
  EXPECT_TRUE(Lint("src/sim/fixture.cc",
                   "void Tick() {\n"
                   "  QA_OBS(recorder_) recorder_->Count(\"ticks\");\n"
                   "}\n")
                  .empty());
}

TEST(QaObs002Test, GateDoesNotLeakPastItsBlock) {
  EXPECT_TRUE(Has(Lint("src/sim/fixture.cc",
                       "void Tick() {\n"
                       "  QA_OBS(recorder_) {\n"
                       "    recorder_->Count(\"in\");\n"
                       "  }\n"
                       "  recorder_->Count(\"out\");\n"
                       "}\n"),
                  "QA-OBS-002"));
}

TEST(QaObs002Test, NonRecorderObjectsAreNotProbes) {
  EXPECT_TRUE(
      Lint("src/sim/fixture.cc", "void F() { history_->Record(e); }\n")
          .empty());
}

// ---------------------------------------------------------------------------
// QA-OBS-003
// ---------------------------------------------------------------------------

TEST(QaObs003Test, FlagsUnregisteredMetricName) {
  Options options;
  options.metrics_catalog =
      "{\"qa_messages_total\", Kind::kCounter, \"messages\"},\n";
  std::vector<Finding> findings =
      Lint("src/sim/fixture.cc",
           "int Id() {\n"
           "  return obs::metrics::MetricId(\"qa_msgs_total\");\n"
           "}\n",
           options);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "QA-OBS-003");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("qa_msgs_total"), std::string::npos);
}

TEST(QaObs003Test, RegisteredNamesVariablesAndCatalogItselfAreClean) {
  Options options;
  options.metrics_catalog =
      "{\"qa_messages_total\", Kind::kCounter, \"messages\"},\n";
  // A registered literal is clean.
  EXPECT_TRUE(
      Lint("src/sim/fixture.cc",
           "int Id() { return MetricId(\"qa_messages_total\"); }\n", options)
          .empty());
  // A runtime name cannot be checked statically.
  EXPECT_TRUE(Lint("src/sim/fixture.cc",
                   "int Id(std::string_view name) { return MetricId(name); "
                   "}\n",
                   options)
                  .empty());
  // The catalog's own implementation of MetricId() is the definition site.
  EXPECT_TRUE(Lint("src/obs/metrics/catalog.cc",
                   "int MetricId(std::string_view name) { return -1; }\n",
                   options)
                  .empty());
  // Without the catalog text the rule is skipped, like QA-OBS-001.
  EXPECT_TRUE(
      Lint("src/sim/fixture.cc",
           "int Id() { return MetricId(\"qa_bogus_total\"); }\n")
          .empty());
}

// ---------------------------------------------------------------------------
// QA-HOT-001
// ---------------------------------------------------------------------------

TEST(QaHot001Test, FlagsStdFunctionInQueueConsumer) {
  std::vector<Finding> findings =
      Lint("src/sim/fixture.cc",
           "#include \"sim/event_queue.h\"\n"
           "#include <functional>\n"
           "std::function<void()> on_fire_;"
           "  // qa-lint: allow(QA-SHD-001)\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "QA-HOT-001");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(QaHot001Test, NonConsumersMayUseStdFunction) {
  EXPECT_TRUE(Lint("src/exec/fixture.cc",
                   "#include <functional>\n"
                   "std::function<void()> task_;\n")
                  .empty());
}

// ---------------------------------------------------------------------------
// QA-SHD-001
// ---------------------------------------------------------------------------

TEST(QaShd001Test, FlagsMutableNamespaceScopeStateWithPosition) {
  std::vector<Finding> findings =
      Lint("src/sim/fixture.cc",
           "namespace qa::sim {\n"
           "int64_t g_dispatched = 0;\n"
           "}\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "QA-SHD-001");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("g_dispatched"), std::string::npos);
}

TEST(QaShd001Test, FlagsMutableStaticsAtAnyScope) {
  // Function-local static: hidden cross-run state even without threads.
  EXPECT_TRUE(Has(Lint("src/allocation/fixture.cc",
                       "int NextId() {\n"
                       "  static int counter = 0;\n"
                       "  return ++counter;\n"
                       "}\n"),
                  "QA-SHD-001"));
  // Class static data member.
  EXPECT_TRUE(Has(Lint("src/sim/fixture.h",
                       "class Pool {\n"
                       "  static int live_;\n"
                       "};\n"),
                  "QA-SHD-001"));
  // thread_local is still per-layout state: shard results would depend on
  // which worker drained which lane.
  EXPECT_TRUE(Has(Lint("src/sim/fixture.cc",
                       "void F() { thread_local int scratch = 0; ++scratch; }\n"),
                  "QA-SHD-001"));
}

TEST(QaShd001Test, ImmutableAndFunctionDeclarationsAreFine) {
  EXPECT_TRUE(Lint("src/sim/fixture.cc",
                   "namespace {\n"
                   "constexpr int kShards = 4;\n"
                   "const char* const kNames[] = {\"a\", \"b\"};\n"
                   "static constexpr double kStep = 0.5;\n"
                   "int Helper(int x);\n"
                   "static int Twice(int x) { int local = x; return local + x; }\n"
                   "}\n")
                  .empty());
  // static_cast is one token, not the `static` keyword.
  EXPECT_TRUE(Lint("src/sim/fixture.cc",
                   "double D(int x) { return static_cast<double>(x); }\n")
                  .empty());
}

TEST(QaShd001Test, OtherDirsAndLocalsAreNotThisRulesBusiness) {
  // Mutable globals outside src/sim and src/allocation are out of scope.
  EXPECT_TRUE(Lint("src/obs/fixture.cc", "int g_records = 0;\n").empty());
  EXPECT_TRUE(Lint("src/market/fixture.cc", "int g_iters = 0;\n").empty());
  // Plain locals and members are per-instance state, not shared.
  EXPECT_TRUE(Lint("src/sim/fixture.cc",
                   "void F() { int local = 0; ++local; }\n")
                  .empty());
  EXPECT_TRUE(Lint("src/sim/fixture.h",
                   "class Lane {\n"
                   "  int dispatched_ = 0;\n"
                   "};\n")
                  .empty());
}

TEST(QaShd001Test, AllowDirectiveSuppresses) {
  EXPECT_TRUE(Lint("src/sim/fixture.cc",
                   "namespace qa::sim {\n"
                   "// Intentional: registry poked only before Run().\n"
                   "// qa-lint: allow(QA-SHD-001)\n"
                   "int g_registry_epoch = 0;\n"
                   "}\n")
                  .empty());
}

// ---------------------------------------------------------------------------
// Cross-file passes (QA-ARCH-001/002, QA-DET-004, QA-SHD-002, QA-SUP-001)
// ---------------------------------------------------------------------------

/// A small layer DAG for the cross-file fixtures, mirroring the shape of
/// tools/arch_layers.txt.
constexpr char kManifest[] =
    "layer util: src/util\n"
    "layer obs: src/obs\n"
    "layer allocation: src/allocation\n"
    "layer sim: src/sim\n"
    "dep obs: util\n"
    "dep allocation: util obs\n"
    "dep sim: util obs allocation\n";

/// Convenience: run the full cross-file analysis over an in-memory file
/// set with the fixture manifest; hard-fails the test on analysis errors.
std::vector<Finding> Analyze(const std::vector<SourceFile>& files,
                             const Options& options = {},
                             ProjectOptions project = {}) {
  if (!project.layer_manifest) project.layer_manifest = kManifest;
  std::vector<std::string> errors;
  std::vector<Finding> findings =
      AnalyzeProject(files, options, project, &errors);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
  return findings;
}

TEST(QaArch001Test, FlagsIllegalCrossLayerIncludeWithPosition) {
  std::vector<Finding> findings = Analyze({
      {"src/sim/fed.h", "struct Fed {};\n"},
      {"src/util/helper.cc", "#include \"sim/fed.h\"\nint x = 1;\n"},
  });
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "QA-ARCH-001");
  EXPECT_EQ(findings[0].file, "src/util/helper.cc");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_NE(findings[0].message.find("'util'"), std::string::npos);
  EXPECT_NE(findings[0].message.find("'sim'"), std::string::npos);
}

TEST(QaArch001Test, DeclaredEdgesAndSystemHeadersAreClean) {
  EXPECT_TRUE(Analyze({
                  {"src/util/vtime.h", "using VTime = long;\n"},
                  {"src/sim/fed.cc",
                   "#include <vector>\n#include \"util/vtime.h\"\n"},
              })
                  .empty());
}

TEST(QaArch001Test, AllowDirectiveSuppresses) {
  EXPECT_TRUE(Analyze({
                  {"src/sim/fed.h", "struct Fed {};\n"},
                  {"src/util/helper.cc",
                   "// qa-lint: allow(QA-ARCH-001)\n"
                   "#include \"sim/fed.h\"\n"},
              })
                  .empty());
}

TEST(QaArch001Test, UnmappedSrcFileIsAManifestDriftError) {
  ProjectOptions project;
  project.layer_manifest = kManifest;
  std::vector<std::string> errors;
  AnalyzeProject({{"src/newdir/x.cc", "int x = 1;\n"}}, Options{}, project,
                 &errors);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("src/newdir/x.cc"), std::string::npos);
}

TEST(QaArch002Test, FlagsTwoFileIncludeCycleAtTheClosingEdge) {
  std::vector<Finding> findings = Analyze({
      {"src/sim/a.h", "#include \"sim/b.h\"\n"},
      {"src/sim/b.h", "#include \"sim/a.h\"\n"},
  });
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "QA-ARCH-002");
  EXPECT_EQ(findings[0].file, "src/sim/b.h");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_NE(findings[0].message.find("src/sim/a.h -> src/sim/b.h -> "
                                     "src/sim/a.h"),
            std::string::npos);
}

TEST(QaArch002Test, ThreeFileCycleReportedOnce) {
  std::vector<Finding> findings = Analyze({
      {"src/sim/a.h", "#include \"sim/b.h\"\n"},
      {"src/sim/b.h", "#include \"sim/c.h\"\n"},
      {"src/sim/c.h", "#include \"sim/a.h\"\n"},
  });
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "QA-ARCH-002");
  EXPECT_EQ(findings[0].file, "src/sim/c.h");
}

TEST(QaArch002Test, AcyclicDiamondIsClean) {
  EXPECT_TRUE(Analyze({
                  {"src/sim/a.h", "#include \"sim/b.h\"\n#include \"sim/c.h\"\n"},
                  {"src/sim/b.h", "#include \"sim/d.h\"\n"},
                  {"src/sim/c.h", "#include \"sim/d.h\"\n"},
                  {"src/sim/d.h", "struct D {};\n"},
              })
                  .empty());
}

TEST(QaDet004Test, FlagsUngatedClockReadWithPosition) {
  Options options;
  options.only_rules = {"QA-DET-004"};
  std::vector<Finding> findings = Analyze(
      {{"src/sim/fixture.cc",
        "int64_t Federation::Tick() {\n"
        "  return util::MonotonicClock::NowNanos();\n"
        "}\n"}},
      options);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "QA-DET-004");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("QA_METRICS"), std::string::npos);
}

TEST(QaDet004Test, GatedSidecarPhaseTimingIsClean) {
  Options options;
  options.only_rules = {"QA-DET-004"};
  EXPECT_TRUE(Analyze(
                  {{"src/sim/fixture.cc",
                    "void Federation::Tick() {\n"
                    "  QA_METRICS(config_.metrics) {\n"
                    "    const int64_t start = "
                    "util::MonotonicClock::NowNanos();\n"
                    "    config_.metrics->RecordPhase(\n"
                    "        kPhase, util::MonotonicClock::NowNanos() - "
                    "start);\n"
                    "  }\n"
                    "}\n"}},
                  options)
                  .empty());
}

TEST(QaDet004Test, GatedClockReadFeedingDispatchIsCaught) {
  // The acceptance fixture: a MonotonicClock reading flowing into
  // Federation::Dispatch state is a finding even inside a gate, with no
  // suppression involved.
  Options options;
  options.only_rules = {"QA-DET-004"};
  std::vector<Finding> findings = Analyze(
      {{"src/sim/fixture.cc",
        "void Federation::Tick() {\n"
        "  QA_METRICS(config_.metrics) {\n"
        "    Dispatch(util::MonotonicClock::NowNanos());\n"
        "  }\n"
        "}\n"}},
      options);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "QA-DET-004");
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_NE(findings[0].message.find("Dispatch"), std::string::npos);
}

TEST(QaDet004Test, MemberStoreIsCaughtEvenGated) {
  Options options;
  options.only_rules = {"QA-DET-004"};
  std::vector<Finding> findings = Analyze(
      {{"src/sim/fixture.cc",
        "void Federation::Tick() {\n"
        "  QA_METRICS(config_.metrics) {\n"
        "    last_mark_ = util::MonotonicClock::NowNanos();\n"
        "  }\n"
        "}\n"}},
      options);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("last_mark_"), std::string::npos);
}

TEST(QaDet004Test, TaintPropagatesThroughLocals) {
  Options options;
  options.only_rules = {"QA-DET-004"};
  std::vector<Finding> findings = Analyze(
      {{"src/sim/fixture.cc",
        "void Federation::Tick() {\n"
        "  QA_METRICS(config_.metrics) {\n"
        "    const int64_t start = util::MonotonicClock::NowNanos();\n"
        "    const int64_t elapsed = start / 2;\n"
        "    Dispatch(elapsed);\n"
        "  }\n"
        "}\n"}},
      options);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 5);
  EXPECT_NE(findings[0].message.find("elapsed"), std::string::npos);
}

TEST(QaDet004Test, ClockReturningHelpersAreSourcesToo) {
  // The fixpoint: a helper whose return statement reads the clock makes
  // its callers clock consumers (TakePhaseMark-style chaining).
  Options options;
  options.only_rules = {"QA-DET-004"};
  std::vector<Finding> findings = Analyze(
      {{"src/obs/metrics/fixture.cc",
        "int64_t Collector::TakeMark() {\n"
        "  return util::MonotonicClock::NowNanos();\n"
        "}\n"},
       {"src/sim/fixture.cc",
        "void Federation::Tick() {\n"
        "  const int64_t t = TakeMark();\n"
        "  Dispatch(t);\n"
        "}\n"}},
      options);
  ASSERT_EQ(findings.size(), 2u);  // ungated read + ungated tainted use
  EXPECT_EQ(findings[0].file, "src/sim/fixture.cc");
  EXPECT_EQ(findings[0].rule, "QA-DET-004");
}

TEST(QaDet004Test, AllowDirectiveSuppresses) {
  Options options;
  options.only_rules = {"QA-DET-004"};
  EXPECT_TRUE(Analyze(
                  {{"src/sim/fixture.cc",
                    "int64_t Federation::Tick() {\n"
                    "  // qa-lint: allow(QA-DET-004)\n"
                    "  return util::MonotonicClock::NowNanos();\n"
                    "}\n"}},
                  options)
                  .empty());
}

TEST(QaShd002Test, LaneLambdaTouchingMediatorMemberIsFlagged) {
  Options options;
  options.only_rules = {"QA-SHD-002"};
  std::vector<Finding> findings = Analyze(
      {{"src/sim/fixture.cc",
        "void Federation::Drain() {\n"
        "  queue_.RunWhileBefore(t, s, [this](const SimEvent& e) {\n"
        "    med_items_.push_back(e);\n"
        "  });\n"
        "}\n"}},
      options);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "QA-SHD-002");
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_NE(findings[0].message.find("med_items_"), std::string::npos);
}

TEST(QaShd002Test, NamedLambdaHandedToParallelForIsAnEntry) {
  // The FenceAndMerge shape: `auto drain = [...]` passed by name.
  Options options;
  options.only_rules = {"QA-SHD-002"};
  std::vector<Finding> findings = Analyze(
      {{"src/sim/fixture.cc",
        "void Federation::FenceAndMerge() {\n"
        "  auto drain = [this](int s) {\n"
        "    ticks_ += 1;\n"
        "  };\n"
        "  config_.runner->ParallelFor(4, drain);\n"
        "}\n"}},
      options);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_NE(findings[0].message.find("ticks_"), std::string::npos);
}

TEST(QaShd002Test, ReachabilityThroughHelpersAndFenceCutoff) {
  Options options;
  options.only_rules = {"QA-SHD-002"};
  // A helper called from DispatchShard inherits the lane context...
  std::vector<Finding> findings = Analyze(
      {{"src/sim/fixture.cc",
        "void Federation::DispatchShard(ShardLane* lane) {\n"
        "  Helper(lane);\n"
        "}\n"
        "void Federation::Helper(ShardLane* lane) {\n"
        "  current_time_ = 0;\n"
        "}\n"}},
      options);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 5);
  EXPECT_NE(findings[0].message.find("current_time_"), std::string::npos);
  // ...but the merge fences are the sanctioned exit: traversal stops at
  // Emit/ScheduleNodeEvent, whose bodies run on the mediator lane.
  EXPECT_TRUE(Analyze(
                  {{"src/sim/fixture.cc",
                    "void Federation::DispatchShard(ShardLane* lane) {\n"
                    "  Emit(e);\n"
                    "}\n"
                    "void Federation::Emit(const SimEvent& e) {\n"
                    "  med_items_.push_back(e);\n"
                    "}\n"}},
                  options)
                  .empty());
}

TEST(QaShd002Test, ChunkedAllocatorCallbackIsFlagged) {
  Options options;
  options.only_rules = {"QA-SHD-002"};
  std::vector<Finding> findings = Analyze(
      {{"src/allocation/fixture.cc",
        "void QaNtAllocator::Scan() {\n"
        "  runner_->ParallelFor(4, [&](int chunk) {\n"
        "    total_messages_ += 1;\n"
        "  });\n"
        "}\n"}},
      options);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_NE(findings[0].message.find("total_messages_"), std::string::npos);
}

TEST(QaShd002Test, ShardLocalStateAndAllowDirectiveAreClean) {
  Options options;
  options.only_rules = {"QA-SHD-002"};
  // pool_/injector_/config_/best_cost_ are shard-local or read-only
  // shared: lane code may touch them freely.
  EXPECT_TRUE(Analyze(
                  {{"src/sim/fixture.cc",
                    "void Federation::DispatchShard(ShardLane* lane) {\n"
                    "  pool_.Pop(node);\n"
                    "  best_cost_[0] = 1.0;\n"
                    "}\n"}},
                  options)
                  .empty());
  EXPECT_TRUE(Analyze(
                  {{"src/sim/fixture.cc",
                    "void Federation::DispatchShard(ShardLane* lane) {\n"
                    "  // qa-lint: allow(QA-SHD-002)\n"
                    "  ticks_ += 1;\n"
                    "}\n"}},
                  options)
                  .empty());
}

TEST(QaSup001Test, StaleDirectiveFlaggedOnlyInAuditMode) {
  std::vector<SourceFile> files = {
      {"src/sim/fixture.cc",
       "void F() {\n"
       "  int x = 1;  // qa-lint: allow(QA-DET-001)\n"
       "}\n"}};
  // Default mode: directives are never audited.
  EXPECT_TRUE(Analyze(files).empty());
  // Audit mode: the directive suppresses nothing and is flagged.
  ProjectOptions project;
  project.stale_suppressions = true;
  std::vector<Finding> findings = Analyze(files, Options{}, project);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "QA-SUP-001");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("QA-DET-001"), std::string::npos);
}

TEST(QaSup001Test, LiveDirectiveIsNotStale) {
  ProjectOptions project;
  project.stale_suppressions = true;
  EXPECT_TRUE(Analyze({{"src/sim/fixture.cc",
                        "int Draw() {\n"
                        "  return rand();  // qa-lint: allow(QA-DET-001)\n"
                        "}\n"}},
                      Options{}, project)
                  .empty());
}

TEST(QaSup001Test, DocCommentMentioningTheSyntaxIsNotADirective) {
  ProjectOptions project;
  project.stale_suppressions = true;
  EXPECT_TRUE(Analyze({{"src/sim/fixture.cc",
                        "// Suppress with `// qa-lint: allow(QA-XXX-123)` "
                        "on the line.\n"
                        "void F() {}\n"}},
                      Options{}, project)
                  .empty());
}

// ---------------------------------------------------------------------------
// Formatting
// ---------------------------------------------------------------------------

TEST(LintFormatTest, TextCarriesPositionRuleAndRationale) {
  std::vector<Finding> findings =
      Lint("src/sim/fixture.cc", "int Draw() { return rand(); }\n");
  ASSERT_EQ(findings.size(), 1u);
  std::string text = FormatText(findings);
  EXPECT_NE(text.find("src/sim/fixture.cc:1:21: QA-DET-001"),
            std::string::npos);
  EXPECT_NE(text.find("why: "), std::string::npos);
}

TEST(LintFormatTest, JsonIsMachineReadable) {
  std::vector<Finding> findings =
      Lint("src/sim/fixture.cc", "int Draw() { return rand(); }\n");
  std::string json = FormatJson(findings);
  EXPECT_NE(json.find("\"rule\":\"QA-DET-001\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":1"), std::string::npos);
  EXPECT_EQ(FormatJson({}), "[]\n");
}

TEST(LintFormatTest, TextCarriesCaretSnippet) {
  std::vector<Finding> findings = Analyze(
      {{"src/sim/fixture.cc", "int Draw() { return rand(); }\n"}});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].snippet, "int Draw() { return rand(); }");
  std::string text = FormatText(findings);
  EXPECT_NE(text.find("| int Draw() { return rand(); }"),
            std::string::npos);
  // The caret line points at column 21 (the `rand` token).
  EXPECT_NE(text.find("| " + std::string(20, ' ') + "^"),
            std::string::npos);
}

TEST(LintFormatTest, SarifCarriesRulesAndResults) {
  std::vector<Finding> findings = Analyze(
      {{"src/sim/fixture.cc", "int Draw() { return rand(); }\n"}});
  std::string sarif = FormatSarif(findings);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"qa_lint\""), std::string::npos);
  // Every catalogued rule is in tool.driver.rules, findings or not.
  for (const Rule& rule : AllRules()) {
    EXPECT_NE(sarif.find("{\"id\": \"" + std::string(rule.id) + "\""),
              std::string::npos)
        << rule.id;
  }
  EXPECT_NE(sarif.find("\"ruleId\": \"QA-DET-001\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/sim/fixture.cc\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Self-check: the real tree is clean (the in-process twin of the CI
// invocation `qa_lint src bench tools tests`).
// ---------------------------------------------------------------------------

TEST(LintSelfCheckTest, RealTreeHasZeroFindings) {
  const std::string root = QA_LINT_SOURCE_DIR;
  std::vector<std::string> errors;
  ProjectOptions project;
  project.manifest_path = root + "/tools/arch_layers.txt";
  // Audit mode on: the real tree must be clean under the full cross-file
  // analysis AND carry no stale allow() directives.
  project.stale_suppressions = true;
  std::vector<Finding> findings = AnalyzePaths(
      {root + "/src", root + "/bench", root + "/tools", root + "/tests"},
      Options{}, project, &errors);
  EXPECT_TRUE(errors.empty()) << errors.front();
  EXPECT_TRUE(findings.empty()) << FormatText(findings);
}

/// Every shipped rule ID is exercised by at least one fixture above;
/// keep this list in sync when adding a rule (the test fails if the
/// catalog grows without coverage).
TEST(LintSelfCheckTest, CatalogMatchesCoveredRules) {
  std::vector<std::string> covered = {
      "QA-ARCH-001", "QA-ARCH-002", "QA-DET-001", "QA-DET-002",
      "QA-DET-003",  "QA-DET-004",  "QA-HOT-001", "QA-NUM-001",
      "QA-NUM-002",  "QA-OBS-001",  "QA-OBS-002", "QA-OBS-003",
      "QA-SHD-001",  "QA-SHD-002",  "QA-SUP-001"};
  ASSERT_EQ(AllRules().size(), covered.size());
  for (const Rule& rule : AllRules()) {
    EXPECT_NE(std::find(covered.begin(), covered.end(), rule.id),
              covered.end())
        << "rule " << rule.id << " has no fixture coverage in lint_test.cc";
  }
}

}  // namespace
}  // namespace qa::lint
