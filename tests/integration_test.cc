#include <gtest/gtest.h>

#include "allocation/factory.h"
#include "allocation/qa_nt_allocator.h"
#include "sim/federation.h"
#include "sim/scenario.h"
#include "workload/sinusoid.h"
#include "workload/zipf_workload.h"

namespace qa {
namespace {

using util::kMillisecond;
using util::kSecond;

/// An AllocationContext wrapper that counts which pieces of node-internal
/// state a mechanism reads — the autonomy property of Table 2, asserted.
class SpyContext : public allocation::AllocationContext {
 public:
  explicit SpyContext(const allocation::AllocationContext* inner)
      : inner_(inner) {}

  int num_nodes() const override { return inner_->num_nodes(); }
  const query::CostModel& cost_model() const override {
    return inner_->cost_model();
  }
  util::VDuration NodeBacklog(catalog::NodeId node) const override {
    ++backlog_reads_;
    return inner_->NodeBacklog(node);
  }
  double NodeQueuedWork(catalog::NodeId node) const override {
    ++work_reads_;
    return inner_->NodeQueuedWork(node);
  }
  double NodeCumulativeWork(catalog::NodeId node) const override {
    ++work_reads_;
    return inner_->NodeCumulativeWork(node);
  }
  util::VTime now() const override { return inner_->now(); }

  int64_t backlog_reads() const { return backlog_reads_; }
  int64_t work_reads() const { return work_reads_; }

 private:
  const allocation::AllocationContext* inner_;
  mutable int64_t backlog_reads_ = 0;
  mutable int64_t work_reads_ = 0;
};

/// Minimal context over a cost model with all-idle nodes.
class IdleContext : public allocation::AllocationContext {
 public:
  explicit IdleContext(const query::CostModel* model) : model_(model) {}
  int num_nodes() const override { return model_->num_nodes(); }
  const query::CostModel& cost_model() const override { return *model_; }
  util::VDuration NodeBacklog(catalog::NodeId) const override { return 0; }
  double NodeQueuedWork(catalog::NodeId) const override { return 0.0; }
  double NodeCumulativeWork(catalog::NodeId) const override { return 0.0; }
  util::VTime now() const override { return 0; }

 private:
  const query::CostModel* model_;
};

TEST(AutonomyTest, QaNtNeverReadsNodeInternals) {
  util::Rng rng(42);
  sim::TwoClassConfig scenario;
  scenario.num_nodes = 20;
  auto model = sim::BuildTwoClassCostModel(scenario, rng);
  allocation::QaNtAllocator qa_nt(model.get(), 500 * kMillisecond);

  IdleContext idle(model.get());
  SpyContext spy(&idle);
  for (int i = 0; i < 200; ++i) {
    workload::Arrival arrival;
    arrival.class_id = static_cast<query::QueryClassId>(i % 2);
    qa_nt.Allocate(arrival, spy);
  }
  // The market mechanism never touches node load or usage state: this is
  // the "respects autonomy" row of Table 2, enforced by test.
  EXPECT_EQ(spy.backlog_reads(), 0);
  EXPECT_EQ(spy.work_reads(), 0);
}

TEST(AutonomyTest, LoadBalancersDoReadNodeInternals) {
  util::Rng rng(42);
  sim::TwoClassConfig scenario;
  scenario.num_nodes = 20;
  auto model = sim::BuildTwoClassCostModel(scenario, rng);
  IdleContext idle(model.get());

  allocation::AllocatorParams params;
  params.cost_model = model.get();
  for (const char* name : {"BNQRD", "TwoProbes"}) {
    auto alloc = allocation::CreateAllocator(name, params);
    SpyContext spy(&idle);
    for (int i = 0; i < 50; ++i) {
      workload::Arrival arrival;
      arrival.class_id = 0;
      alloc->Allocate(arrival, spy);
    }
    EXPECT_GT(spy.backlog_reads() + spy.work_reads(), 0) << name;
  }
}

/// Full-pipeline run on the two-class federation for every mechanism.
class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Rng rng(42);
    sim::TwoClassConfig scenario;
    scenario.num_nodes = 20;
    model_ = sim::BuildTwoClassCostModel(scenario, rng);
    capacity_ = sim::EstimateCapacityQps(*model_, {2.0, 1.0},
                                         500 * kMillisecond);

    workload::SinusoidConfig wave;
    wave.frequency_hz = 0.05;
    wave.duration = 20 * kSecond;
    wave.num_origin_nodes = 20;
    wave.q1_peak_rate = 0.9 * capacity_;
    util::Rng wl_rng(43);
    trace_ = workload::GenerateSinusoidWorkload(wave, wl_rng);
  }

  sim::SimMetrics Run(const std::string& mechanism) {
    allocation::AllocatorParams params;
    params.cost_model = model_.get();
    params.period = 500 * kMillisecond;
    params.seed = 42;
    auto alloc = allocation::CreateAllocator(mechanism, params);
    sim::FederationConfig config;
    config.period = 500 * kMillisecond;
    config.max_retries = 5000;
    sim::Federation fed(model_.get(), alloc.get(), config);
    return fed.Run(trace_);
  }

  std::unique_ptr<query::MatrixCostModel> model_;
  double capacity_ = 0.0;
  workload::Trace trace_;
};

TEST_F(EndToEndTest, EveryMechanismCompletesTheTrace) {
  for (const std::string& name : allocation::AllMechanismNames()) {
    sim::SimMetrics m = Run(name);
    EXPECT_EQ(m.completed + m.dropped,
              static_cast<int64_t>(trace_.size()))
        << name;
    EXPECT_EQ(m.dropped, 0) << name;
    EXPECT_GT(m.MeanResponseMs(), 0.0) << name;
  }
}

TEST_F(EndToEndTest, QaNtBeatsSpeedBlindBaselines) {
  double qa_nt = Run("QA-NT").MeanResponseMs();
  EXPECT_LT(qa_nt, Run("Random").MeanResponseMs());
  EXPECT_LT(qa_nt, Run("RoundRobin").MeanResponseMs());
}

TEST_F(EndToEndTest, ResponseConservation) {
  // Total busy time across nodes can never exceed nodes * horizon, and
  // completed work is consistent with per-node counters.
  sim::SimMetrics m = Run("QA-NT");
  int64_t per_node_total = 0;
  for (int64_t c : m.node_completed) per_node_total += c;
  EXPECT_EQ(per_node_total, m.completed);
  EXPECT_LE(m.total_busy_time,
            static_cast<util::VDuration>(model_->num_nodes()) * m.end_time);
}

TEST_F(EndToEndTest, MessageCountsReflectMechanismCosts) {
  // QA-NT negotiates with every feasible node (plus retries), so it costs
  // strictly more messages than Random's single send (Table 2 discussion).
  sim::SimMetrics qa_nt = Run("QA-NT");
  sim::SimMetrics random = Run("Random");
  EXPECT_GT(qa_nt.messages, random.messages);
  EXPECT_EQ(random.messages, static_cast<int64_t>(trace_.size()));
}

TEST(Fig1IntegrationTest, ExactPaperNumbers) {
  // The Fig. 1 walk, end to end through the cost model: LB averages
  // 662.5 ms, QA 431.25 ms, and QA ends the overload 300 ms earlier.
  auto model = sim::BuildFig1CostModel();
  struct Step {
    int class_id;
    int lb_node;
    int qa_node;
  };
  // Paper's narrated assignment: q1->N1, q1->N2, then q2 x3 -> N1,
  // q2 -> N2, q2 x2 -> N1 for LB; QA sends q1s to N2 and q2s to N1.
  std::vector<Step> steps = {{0, 0, 1}, {0, 1, 1}, {1, 0, 0}, {1, 0, 0},
                             {1, 0, 0}, {1, 1, 0}, {1, 0, 0}, {1, 0, 0}};
  double lb_busy[2] = {0, 0};
  double qa_busy[2] = {0, 0};
  double lb_total = 0;
  double qa_total = 0;
  for (const Step& s : steps) {
    lb_busy[s.lb_node] +=
        util::ToMillis(model->Cost(s.class_id, s.lb_node));
    lb_total += lb_busy[s.lb_node];
    qa_busy[s.qa_node] +=
        util::ToMillis(model->Cost(s.class_id, s.qa_node));
    qa_total += qa_busy[s.qa_node];
  }
  EXPECT_DOUBLE_EQ(lb_total / 8.0, 662.5);
  EXPECT_DOUBLE_EQ(qa_total / 8.0, 431.25);
  EXPECT_DOUBLE_EQ(lb_busy[0], 900.0);
  EXPECT_DOUBLE_EQ(lb_busy[1], 950.0);
  EXPECT_DOUBLE_EQ(qa_busy[0], 600.0);
  EXPECT_DOUBLE_EQ(qa_busy[1], 900.0);
}

TEST(Table3IntegrationTest, ZipfWorkloadRunsOnFullScenario) {
  sim::Table3Config config;
  config.catalog.num_relations = 150;
  config.catalog.num_nodes = 15;
  config.profiles.num_nodes = 15;
  config.templates.num_classes = 15;
  config.templates.max_joins = 8;
  util::Rng rng(42);
  sim::Scenario scenario = sim::BuildTable3Scenario(config, rng);

  workload::ZipfWorkloadConfig zipf;
  zipf.num_queries = 400;
  zipf.num_classes = 15;
  zipf.mean_interarrival = 3000 * kMillisecond;
  zipf.num_origin_nodes = 15;
  util::Rng wl_rng(43);
  workload::Trace trace = workload::GenerateZipfWorkload(zipf, wl_rng);

  allocation::AllocatorParams params;
  params.cost_model = scenario.cost_model.get();
  params.seed = 42;
  auto alloc = allocation::CreateAllocator("QA-NT", params);
  sim::FederationConfig fed_config;
  fed_config.max_retries = 5000;
  sim::Federation fed(scenario.cost_model.get(), alloc.get(), fed_config);
  sim::SimMetrics m = fed.Run(trace);
  EXPECT_EQ(m.completed, 400);
  EXPECT_EQ(m.dropped, 0);
}

}  // namespace
}  // namespace qa
