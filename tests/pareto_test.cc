#include <gtest/gtest.h>

#include "market/pareto.h"
#include "util/rng.h"
#include "util/vtime.h"

namespace qa::market {
namespace {

using util::kMillisecond;

TEST(PreferenceTest, TotalCountOrdering) {
  EXPECT_TRUE(Prefers(QuantityVector({3, 0}), QuantityVector({1, 1})));
  EXPECT_TRUE(StrictlyPrefers(QuantityVector({3, 0}), QuantityVector({1, 1})));
  EXPECT_TRUE(Prefers(QuantityVector({1, 1}), QuantityVector({2, 0})));
  EXPECT_FALSE(StrictlyPrefers(QuantityVector({1, 1}),
                               QuantityVector({2, 0})));
}

TEST(ParetoDominatesTest, RequiresStrictImprovementSomewhere) {
  Solution a;
  a.consumptions = {QuantityVector({2, 0}), QuantityVector({1, 0})};
  Solution b;
  b.consumptions = {QuantityVector({1, 0}), QuantityVector({1, 0})};
  EXPECT_TRUE(ParetoDominates(a, b));
  EXPECT_FALSE(ParetoDominates(b, a));
  EXPECT_FALSE(ParetoDominates(a, a));  // equal => no strict preference
}

TEST(ParetoDominatesTest, NoDominanceWhenTradeoff) {
  Solution a;
  a.consumptions = {QuantityVector({3, 0}), QuantityVector({0, 0})};
  Solution b;
  b.consumptions = {QuantityVector({0, 0}), QuantityVector({3, 0})};
  EXPECT_FALSE(ParetoDominates(a, b));
  EXPECT_FALSE(ParetoDominates(b, a));
}

/// Builds the paper's Fig. 1 / Fig. 2 instance: N1 runs q1/q2 in
/// 400/100 ms, N2 in 450/500 ms; demand d1 = (1, 6), d2 = (1, 0); one
/// period of T = 1000 ms (we stretch T to make the hand-computed optimum
/// reachable within a single period).
struct Fig1Instance {
  CapacitySupplySet n1{{400 * kMillisecond, 100 * kMillisecond},
                       1000 * kMillisecond};
  CapacitySupplySet n2{{450 * kMillisecond, 500 * kMillisecond},
                       1000 * kMillisecond};
  std::vector<QuantityVector> demands = {QuantityVector({1, 6}),
                                         QuantityVector({1, 0})};
  std::vector<const SupplySet*> sets{&n1, &n2};
};

TEST(FeasibilityTest, ValidatesSupplyAndConsumption) {
  Fig1Instance inst;
  Solution good;
  // N1 supplies (0, 6)? 600 ms <= 1000 ms; N2 supplies (2, 0): 900 ms.
  good.supplies = {QuantityVector({0, 6}), QuantityVector({2, 0})};
  good.consumptions = {QuantityVector({1, 6}), QuantityVector({1, 0})};
  EXPECT_TRUE(IsFeasible(good, inst.demands, inst.sets));

  Solution over_supply = good;
  over_supply.supplies[0] = QuantityVector({0, 20});  // 2000 ms > budget
  EXPECT_FALSE(IsFeasible(over_supply, inst.demands, inst.sets));

  Solution over_consume = good;
  over_consume.consumptions[1] = QuantityVector({2, 0});  // demand is (1,0)
  EXPECT_FALSE(IsFeasible(over_consume, inst.demands, inst.sets));

  Solution unbalanced = good;
  unbalanced.supplies[1] = QuantityVector({1, 0});  // supply != consumption
  EXPECT_FALSE(IsFeasible(unbalanced, inst.demands, inst.sets));
}

TEST(EnumerateTest, AllEnumeratedSolutionsFeasible) {
  Fig1Instance inst;
  std::vector<Solution> all =
      EnumerateFeasibleSolutions(inst.demands, inst.sets);
  ASSERT_FALSE(all.empty());
  for (const Solution& s : all) {
    EXPECT_TRUE(IsFeasible(s, inst.demands, inst.sets));
  }
}

TEST(MaxTotalConsumptionTest, Fig1OptimumServesEverything) {
  Fig1Instance inst;
  // Full demand = 8 queries; N1 can run 6 q2 + N2 can run 2 q1 in 1 s.
  EXPECT_EQ(MaxTotalConsumption(inst.demands, inst.sets), 8);
}

TEST(ParetoOptimalTest, QaAllocationIsParetoOptimal) {
  Fig1Instance inst;
  // The QA allocation of the paper: N1 evaluates all six q2, N2 both q1.
  Solution qa;
  qa.supplies = {QuantityVector({0, 6}), QuantityVector({2, 0})};
  qa.consumptions = {QuantityVector({1, 6}), QuantityVector({1, 0})};
  EXPECT_TRUE(IsParetoOptimal(qa, inst.demands, inst.sets));
}

TEST(ParetoOptimalTest, WastefulAllocationIsDominated) {
  Fig1Instance inst;
  // Serve only 2 queries although 8 are achievable: dominated.
  Solution lazy;
  lazy.supplies = {QuantityVector({0, 1}), QuantityVector({1, 0})};
  lazy.consumptions = {QuantityVector({0, 1}), QuantityVector({1, 0})};
  ASSERT_TRUE(IsFeasible(lazy, inst.demands, inst.sets));
  EXPECT_FALSE(IsParetoOptimal(lazy, inst.demands, inst.sets));
}

TEST(ParetoOptimalTest, MaxTotalImpliesParetoOptimal) {
  // Property check on random small instances: any feasible solution whose
  // total equals MaxTotalConsumption is Pareto optimal.
  util::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    CapacitySupplySet s1({rng.UniformInt(1, 3), rng.UniformInt(1, 3)}, 4);
    CapacitySupplySet s2({rng.UniformInt(1, 3), rng.UniformInt(1, 3)}, 4);
    std::vector<const SupplySet*> sets{&s1, &s2};
    std::vector<QuantityVector> demands = {
        QuantityVector({rng.UniformInt(0, 3), rng.UniformInt(0, 3)}),
        QuantityVector({rng.UniformInt(0, 3), rng.UniformInt(0, 3)})};
    std::vector<Solution> all = EnumerateFeasibleSolutions(demands, sets);
    Quantity max_total = MaxTotalConsumption(demands, sets);
    for (const Solution& sol : all) {
      if (sol.AggregateConsumption().Total() == max_total) {
        EXPECT_TRUE(IsParetoOptimalAmong(sol, all));
      }
    }
  }
}

}  // namespace
}  // namespace qa::market
