// Differential testing of the minidb planner/executor: random star-ish
// statements over random small tables are executed both by the engine and
// by an independent brute-force reference evaluator written with none of
// the engine's machinery (no plan nodes, no pushdown, no join ordering).
// Any disagreement is a planner or executor bug.

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "dbms/engine.h"
#include "util/rng.h"

namespace qa::dbms {
namespace {

// ------------------------------------------------------- reference eval

bool RefCompare(int op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return false;
  switch (op) {
    case 0:
      return a == b;
    case 1:
      return a != b;
    case 2:
      return a < b;
    case 3:
      return a <= b;
    case 4:
      return a > b;
    default:
      return a >= b;
  }
}

/// Evaluates `stmt` by materializing the full cross product of all FROM
/// inputs and filtering — O(n^k), tiny tables only.
std::vector<Row> ReferenceEvaluate(const Database& db,
                                   const SelectStatement& stmt) {
  // Resolve every input to (rows, schema) with view semantics applied.
  struct Input {
    std::vector<Row> rows;
    Schema schema;
  };
  std::vector<Input> inputs;
  for (const TableRef& ref : stmt.tables) {
    Input input;
    if (const Table* table = db.GetTable(ref.name)) {
      input.rows = table->rows();
      input.schema = table->schema();
    } else {
      const ViewDef* view = db.GetView(ref.name);
      const Table* base = db.GetTable(view->base_table);
      std::vector<std::string> columns = view->columns;
      if (columns.empty()) {
        for (const Column& c : base->schema().columns()) {
          columns.push_back(c.name);
        }
      }
      std::vector<Column> cols;
      for (const std::string& c : columns) {
        cols.push_back(base->schema().column(base->schema().FindColumn(c)));
      }
      input.schema = Schema(std::move(cols));
      for (const Row& row : base->rows()) {
        bool keep = true;
        for (const ViewDef::Filter& f : view->filters) {
          int col = base->schema().FindColumn(f.column);
          if (!RefCompare(f.op, row[static_cast<size_t>(col)], f.constant)) {
            keep = false;
            break;
          }
        }
        if (!keep) continue;
        Row projected;
        for (const std::string& c : columns) {
          projected.push_back(
              row[static_cast<size_t>(base->schema().FindColumn(c))]);
        }
        input.rows.push_back(std::move(projected));
      }
    }
    inputs.push_back(std::move(input));
  }

  // Column offset of each input in the concatenated row.
  std::vector<int> offsets;
  int width = 0;
  for (const Input& input : inputs) {
    offsets.push_back(width);
    width += input.schema.num_columns();
  }
  auto global = [&](const ColumnRef& ref) {
    return offsets[static_cast<size_t>(ref.table)] +
           inputs[static_cast<size_t>(ref.table)].schema.FindColumn(
               ref.column);
  };

  // Full cross product, then join predicates, then filters.
  std::vector<Row> joined;
  std::vector<size_t> idx(inputs.size(), 0);
  while (true) {
    Row row;
    bool valid = true;
    for (size_t i = 0; i < inputs.size(); ++i) {
      if (inputs[i].rows.empty()) {
        valid = false;
        break;
      }
      const Row& part = inputs[i].rows[idx[i]];
      row.insert(row.end(), part.begin(), part.end());
    }
    if (!valid) break;
    bool keep = true;
    for (const JoinPredicate& jp : stmt.joins) {
      const Value& l = row[static_cast<size_t>(
          global({jp.left_table, jp.left_column}))];
      const Value& r = row[static_cast<size_t>(
          global({jp.right_table, jp.right_column}))];
      if (l.is_null() || r.is_null() || !(l == r)) {
        keep = false;
        break;
      }
    }
    if (keep) {
      for (const SelectionPredicate& f : stmt.filters) {
        if (!RefCompare(f.op,
                        row[static_cast<size_t>(global(
                            {f.table, f.column}))],
                        f.constant)) {
          keep = false;
          break;
        }
      }
    }
    if (keep) joined.push_back(std::move(row));
    // Odometer increment.
    size_t i = 0;
    for (; i < inputs.size(); ++i) {
      if (++idx[i] < inputs[i].rows.size()) break;
      idx[i] = 0;
    }
    if (i == inputs.size()) break;
  }

  // Grouping / projection.
  if (stmt.has_grouping()) {
    std::map<std::vector<std::string>, std::vector<Row>> groups;
    for (const Row& row : joined) {
      std::vector<std::string> key;
      for (const ColumnRef& g : stmt.group_by) {
        key.push_back(row[static_cast<size_t>(global(g))].ToString());
      }
      groups[key].push_back(row);
    }
    if (stmt.group_by.empty() && groups.empty()) {
      groups[{}] = {};
    }
    std::vector<Row> out;
    for (const auto& [key, rows] : groups) {
      Row result;
      for (const ColumnRef& g : stmt.group_by) {
        result.push_back(rows.front()[static_cast<size_t>(global(g))]);
      }
      for (const Aggregate& agg : stmt.aggregates) {
        if (agg.fn == Aggregate::Fn::kCount && agg.arg.column.empty()) {
          result.push_back(Value(static_cast<int64_t>(rows.size())));
          continue;
        }
        int col = global(agg.arg);
        double sum = 0.0;
        int64_t count = 0;
        Value min_v = Value::Null();
        Value max_v = Value::Null();
        for (const Row& row : rows) {
          const Value& v = row[static_cast<size_t>(col)];
          if (v.is_null()) continue;
          ++count;
          if (v.type() == ValueType::kInt ||
              v.type() == ValueType::kDouble) {
            sum += v.AsDouble();
          }
          if (min_v.is_null() || v < min_v) min_v = v;
          if (max_v.is_null() || max_v < v) max_v = v;
        }
        switch (agg.fn) {
          case Aggregate::Fn::kCount:
            result.push_back(Value(count));
            break;
          case Aggregate::Fn::kSum:
            result.push_back(Value(sum));
            break;
          case Aggregate::Fn::kAvg:
            result.push_back(count > 0
                                 ? Value(sum / static_cast<double>(count))
                                 : Value::Null());
            break;
          case Aggregate::Fn::kMin:
            result.push_back(min_v);
            break;
          case Aggregate::Fn::kMax:
            result.push_back(max_v);
            break;
        }
      }
      out.push_back(std::move(result));
    }
    return out;
  }

  if (!stmt.projections.empty()) {
    std::vector<Row> out;
    for (const Row& row : joined) {
      Row projected;
      for (const ColumnRef& p : stmt.projections) {
        projected.push_back(row[static_cast<size_t>(global(p))]);
      }
      out.push_back(std::move(projected));
    }
    return out;
  }
  return joined;
}

/// Canonical multiset form for order-insensitive comparison.
std::vector<std::string> Canonical(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  for (const Row& row : rows) {
    std::string s;
    for (const Value& v : row) {
      // Numbers compare equal across int/double; canonicalize through
      // their double rendering so 3 == 3.0.
      if (v.type() == ValueType::kInt || v.type() == ValueType::kDouble) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.6f", v.AsDouble());
        s += buf;
      } else {
        s += v.ToString();
      }
      s += "|";
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

// --------------------------------------------------- random instances

struct RandomDb {
  Database db;
  std::vector<std::string> relations;  // tables + views
};

RandomDb MakeRandomDb(util::Rng& rng) {
  RandomDb out;
  int num_tables = static_cast<int>(rng.UniformInt(2, 3));
  for (int t = 0; t < num_tables; ++t) {
    std::string name = "t" + std::to_string(t);
    Table table(name, Schema({{"id", ValueType::kInt},
                              {"fk", ValueType::kInt},
                              {"cat", ValueType::kInt},
                              {"val", ValueType::kDouble}}));
    int rows = static_cast<int>(rng.UniformInt(0, 12));
    for (int r = 0; r < rows; ++r) {
      Row row;
      row.push_back(rng.Bernoulli(0.1) ? Value::Null()
                                       : Value(static_cast<int64_t>(r)));
      row.push_back(Value(rng.UniformInt(0, 6)));
      row.push_back(Value(rng.UniformInt(0, 3)));
      row.push_back(Value(rng.UniformReal(0.0, 100.0)));
      table.AppendUnchecked(std::move(row));
    }
    out.relations.push_back(name);
    EXPECT_TRUE(out.db.CreateTable(std::move(table)).ok());
  }
  // One view over t0.
  if (rng.Bernoulli(0.7)) {
    ViewDef view;
    view.name = "v0";
    view.base_table = "t0";
    view.columns = {"id", "cat", "val"};
    if (rng.Bernoulli(0.5)) {
      view.filters.push_back({"cat", 3, Value(rng.UniformInt(0, 3))});
    }
    EXPECT_TRUE(out.db.CreateView(view).ok());
    out.relations.push_back("v0");
  }
  return out;
}

SelectStatement MakeRandomStatement(const RandomDb& rdb, util::Rng& rng) {
  StatementBuilder builder;
  int num_inputs = static_cast<int>(rng.UniformInt(1, 2));
  std::vector<std::string> chosen;
  for (int i = 0; i < num_inputs; ++i) {
    chosen.push_back(rdb.relations[static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(rdb.relations.size()) - 1))]);
    builder.From(chosen.back());
  }
  // The view only exposes id/cat/val, so the fk side of the join must be a
  // base table.
  if (num_inputs == 2 && chosen[0][0] == 't' && rng.Bernoulli(0.8)) {
    builder.Join(0, "fk", 1, "id");
  }
  int num_filters = static_cast<int>(rng.UniformInt(0, 2));
  for (int f = 0; f < num_filters; ++f) {
    int t = static_cast<int>(rng.UniformInt(0, num_inputs - 1));
    // Views expose cat/val/id; tables also fk. Stick to shared columns.
    const char* column = rng.Bernoulli(0.5) ? "cat" : "val";
    int op = static_cast<int>(rng.UniformInt(0, 5));
    Value constant = std::string(column) == "cat"
                         ? Value(rng.UniformInt(0, 3))
                         : Value(rng.UniformReal(0.0, 100.0));
    builder.Where(t, column, op, std::move(constant));
  }
  int shape = static_cast<int>(rng.UniformInt(0, 2));
  if (shape == 0) {
    // Grouped aggregate.
    builder.GroupBy(0, "cat");
    builder.Agg(Aggregate::Fn::kSum, 0, "val");
    builder.Agg(Aggregate::Fn::kCount, 0, "id");
  } else if (shape == 1) {
    builder.Select(0, "id").Select(0, "val");
  }
  return builder.Build();
}

class DifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialTest, EngineMatchesReferenceEvaluator) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 3);
  RandomDb rdb = MakeRandomDb(rng);
  for (int q = 0; q < 8; ++q) {
    SelectStatement stmt = MakeRandomStatement(rdb, rng);
    auto engine = ExecuteStatement(rdb.db, stmt);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    std::vector<Row> reference = ReferenceEvaluate(rdb.db, stmt);
    EXPECT_EQ(Canonical(engine->table.rows()), Canonical(reference))
        << "instance " << GetParam() << " query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomQueries, DifferentialTest,
                         ::testing::Range(0, 30));

// Hash-vs-merge differential on the same random instances.
class JoinMethodDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(JoinMethodDifferentialTest, HashAndMergeJoinsAgree) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 11);
  RandomDb rdb = MakeRandomDb(rng);
  SelectStatement stmt = StatementBuilder()
                             .From("t0")
                             .From("t1")
                             .Join(0, "fk", 1, "id")
                             .Build();
  PlannerOptions hash;
  hash.use_hash_join = true;
  PlannerOptions merge;
  merge.use_hash_join = false;
  auto h = ExecuteStatement(rdb.db, stmt, hash);
  auto m = ExecuteStatement(rdb.db, stmt, merge);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(Canonical(h->table.rows()), Canonical(m->table.rows()));
}

INSTANTIATE_TEST_SUITE_P(RandomJoins, JoinMethodDifferentialTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace qa::dbms
