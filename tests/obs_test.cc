#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "allocation/cluster_plan.h"
#include "allocation/solicitation.h"
#include "exec/experiment_runner.h"
#include "exec/thread_pool.h"
#include "market/tatonnement.h"
#include "sim/scenario.h"
#include "workload/sinusoid.h"
#include "obs/analysis.h"
#include "obs/json.h"
#include "obs/recorder.h"
#include "obs/report.h"
#include "obs/snapshot.h"
#include "obs/trace_reader.h"
#include "obs/trace_schema.h"
#include "util/logging.h"
#include "util/vtime.h"

namespace qa::obs {
namespace {

using util::kMillisecond;

// ------------------------------------------------------------------ Json

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(Json::Parse("null").value().is_null());
  EXPECT_TRUE(Json::Parse("true").value().AsBool(false));
  EXPECT_FALSE(Json::Parse("false").value().AsBool(true));
  EXPECT_EQ(Json::Parse("42").value().AsInt(), 42);
  EXPECT_EQ(Json::Parse("-7").value().AsInt(), -7);
  EXPECT_DOUBLE_EQ(Json::Parse("2.5").value().AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(Json::Parse("1e3").value().AsDouble(), 1000.0);
  EXPECT_EQ(Json::Parse("\"hi\"").value().AsString(), "hi");
}

TEST(JsonTest, IntAndDoubleAreDistinctButCoerce) {
  Json i = Json::Parse("42").value();
  Json d = Json::Parse("42.0").value();
  EXPECT_TRUE(i.is_int());
  EXPECT_FALSE(i.is_double());
  EXPECT_TRUE(d.is_double());
  // Cross-type reads coerce instead of falling back.
  EXPECT_DOUBLE_EQ(i.AsDouble(), 42.0);
  EXPECT_EQ(d.AsInt(), 42);
}

TEST(JsonTest, ObjectKeepsInsertionOrderAndOverwrites) {
  Json obj = Json::MakeObject();
  obj.Set("b", 1);
  obj.Set("a", 2);
  obj.Set("b", 3);  // overwrite in place, no duplicate key
  EXPECT_EQ(obj.Dump(), "{\"b\":3,\"a\":2}");
  EXPECT_EQ(obj.GetInt("b"), 3);
  EXPECT_EQ(obj.GetInt("missing", -1), -1);
}

TEST(JsonTest, RoundTripsEscapesAndNesting) {
  std::string text =
      "{\"s\":\"a\\\"b\\\\c\\n\",\"arr\":[1,2.5,\"x\"],"
      "\"nested\":{\"k\":true}}";
  Json parsed = Json::Parse(text).value();
  EXPECT_EQ(parsed.GetString("s"), "a\"b\\c\n");
  // Dump -> Parse -> Dump is a fixed point.
  std::string dumped = parsed.Dump();
  EXPECT_EQ(Json::Parse(dumped).value().Dump(), dumped);
}

TEST(JsonTest, DoublesPrintShortestRoundTrip) {
  EXPECT_EQ(Json(0.1).Dump(), "0.1");
  // Integral doubles keep a decimal point (reparse as double, not int).
  EXPECT_EQ(Json(390.0).Dump(), "390.0");
  EXPECT_EQ(Json(-2.0).Dump(), "-2.0");
  Json third(1.0 / 3.0);
  EXPECT_DOUBLE_EQ(Json::Parse(third.Dump()).value().AsDouble(),
                   1.0 / 3.0);
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":}").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
  EXPECT_FALSE(Json::Parse("1 2").ok());  // trailing characters
}

// --------------------------------------------------- Schema round trip

// The acceptance lock for the trace format: every record type written
// through the Recorder parses back to an identical struct, including the
// fields that are omitted on write because they hold their default.
TEST(TraceSchemaTest, WriteParseRoundTripIsExact) {
  MetaRecord meta;
  meta.mechanism = "QA-NT";
  meta.nodes = 2;
  meta.classes = 2;
  meta.period_us = 500 * kMillisecond;
  meta.ticks_per_period = 8;
  meta.seed = 42;
  meta.solicitation = "uniform-sample";  // v3: solicitation policy + fanout
  meta.fanout = 4;

  EventRecord arrival;
  arrival.kind = EventRecord::Kind::kArrival;
  arrival.t_us = 1000;
  arrival.query = 7;
  arrival.class_id = 1;
  arrival.origin = 0;  // node/messages/attempts/response_ms stay default

  EventRecord assign;
  assign.kind = EventRecord::Kind::kAssign;
  assign.t_us = 1200;
  assign.query = 7;
  assign.class_id = 1;
  assign.node = 1;
  assign.messages = 9;
  assign.solicited = 4;  // v3: nodes asked for offers on this attempt
  assign.attempts = 1;

  EventRecord complete;
  complete.kind = EventRecord::Kind::kComplete;
  complete.t_us = 412250;
  complete.query = 7;
  complete.class_id = 1;
  complete.node = 1;
  complete.response_ms = 411.25;

  PriceRecord price;
  price.t_us = 500000;
  price.node = 1;
  price.class_id = 0;
  price.price = 3.375;
  price.planned = 2;  // remaining stays default (0) and is omitted

  AgentRecord agent;
  agent.t_us = 500000;
  agent.node = 0;
  agent.requests = 12;
  agent.offers = 9;
  agent.accepted = 5;
  agent.declined = 3;
  agent.periods = 1;
  agent.earnings = 16.5;

  UmpireRecord umpire;
  umpire.iter = 17;
  umpire.class_id = 1;
  umpire.price = 0.25;
  umpire.excess = -2.0;

  std::ostringstream sink;
  {
    Recorder recorder(&sink);
    recorder.Record(meta);
    recorder.Record(arrival);
    recorder.Record(assign);
    recorder.Record(complete);
    recorder.Record(price);
    recorder.Record(agent);
    recorder.Record(umpire);
    recorder.Count("ticks", 390);
    recorder.Gauge("capacity_qps", 12.5);
    recorder.Finish();
  }

  std::istringstream in(sink.str());
  util::StatusOr<ParsedTrace> parsed = ParsedTrace::Parse(in);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const ParsedTrace& trace = parsed.value();

  ASSERT_TRUE(trace.has_meta);
  EXPECT_EQ(trace.meta, meta);
  ASSERT_EQ(trace.events.size(), 3u);
  EXPECT_EQ(trace.events[0], arrival);
  EXPECT_EQ(trace.events[1], assign);
  EXPECT_EQ(trace.events[2], complete);
  ASSERT_EQ(trace.prices.size(), 1u);
  EXPECT_EQ(trace.prices[0], price);
  ASSERT_EQ(trace.agents.size(), 1u);
  EXPECT_EQ(trace.agents[0], agent);
  ASSERT_EQ(trace.umpire.size(), 1u);
  EXPECT_EQ(trace.umpire[0], umpire);
  ASSERT_EQ(trace.stats.size(), 2u);
  EXPECT_EQ(trace.stats[0], (StatRecord{"ticks", 390.0, false}));
  EXPECT_EQ(trace.stats[1], (StatRecord{"capacity_qps", 12.5, true}));
  EXPECT_EQ(trace.NumRecords(), 9u);
}

TEST(TraceSchemaTest, CountersSerializeAsIntegers) {
  StatRecord counter{"ticks", 390.0, /*gauge=*/false};
  EXPECT_EQ(counter.ToJson().Dump(),
            "{\"type\":\"counter\",\"name\":\"ticks\",\"value\":390}");
  StatRecord gauge{"qps", 12.5, /*gauge=*/true};
  EXPECT_EQ(gauge.ToJson().Dump(),
            "{\"type\":\"gauge\",\"name\":\"qps\",\"value\":12.5}");
}

TEST(TraceSchemaTest, EveryEventKindRoundTripsByName) {
  for (EventRecord::Kind kind :
       {EventRecord::Kind::kArrival, EventRecord::Kind::kAssign,
        EventRecord::Kind::kReject, EventRecord::Kind::kDrop,
        EventRecord::Kind::kBounce, EventRecord::Kind::kDeliver,
        EventRecord::Kind::kComplete, EventRecord::Kind::kTick,
        EventRecord::Kind::kCrash, EventRecord::Kind::kRestart,
        EventRecord::Kind::kDegrade, EventRecord::Kind::kLost}) {
    EventRecord::Kind parsed = EventRecord::Kind::kTick;
    ASSERT_TRUE(ParseEventKind(EventKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  EventRecord::Kind unused;
  EXPECT_FALSE(ParseEventKind("warp", &unused));
}

TEST(TraceSchemaTest, FaultEventsRoundTripWithFactor) {
  EventRecord crash;
  crash.kind = EventRecord::Kind::kCrash;
  crash.t_us = 2000;
  crash.node = 3;

  EventRecord degrade;
  degrade.kind = EventRecord::Kind::kDegrade;
  degrade.t_us = 2500;
  degrade.node = 1;
  degrade.factor = 0.5;

  EventRecord lost;
  lost.kind = EventRecord::Kind::kLost;
  lost.t_us = 2600;
  lost.query = 9;
  lost.class_id = 1;
  lost.node = 3;
  lost.attempts = 2;

  EventRecord restart;
  restart.kind = EventRecord::Kind::kRestart;
  restart.t_us = 4000;
  restart.node = 3;

  std::ostringstream sink;
  {
    Recorder recorder(&sink);
    MetaRecord meta;
    meta.mechanism = "QA-NT";
    recorder.Record(meta);
    recorder.Record(crash);
    recorder.Record(degrade);
    recorder.Record(lost);
    recorder.Record(restart);
  }
  std::istringstream in(sink.str());
  util::StatusOr<ParsedTrace> parsed = ParsedTrace::Parse(in);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->events.size(), 4u);
  EXPECT_EQ(parsed->events[0], crash);
  EXPECT_EQ(parsed->events[1], degrade);
  EXPECT_EQ(parsed->events[2], lost);
  EXPECT_EQ(parsed->events[3], restart);
  // The degrade factor survives the trip; non-degrade records omit it.
  EXPECT_DOUBLE_EQ(parsed->events[1].factor, 0.5);
  EXPECT_NE(sink.str().find("\"factor\":0.5"), std::string::npos);
}

// ----------------------------------------------------------- TraceReader

TEST(TraceReaderTest, SkipsUnknownTypesFromSameSchema) {
  std::istringstream in(
      "{\"type\":\"meta\",\"schema\":1,\"mechanism\":\"X\"}\n"
      "{\"type\":\"hologram\",\"x\":1}\n"
      "\n"
      "{\"type\":\"event\",\"kind\":\"tick\",\"t_us\":5}\n");
  util::StatusOr<ParsedTrace> parsed = ParsedTrace::Parse(in);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->events.size(), 1u);
  EXPECT_EQ(parsed->NumRecords(), 2u);
}

TEST(TraceReaderTest, RejectsNewerSchemaAndBadLines) {
  std::istringstream newer("{\"type\":\"meta\",\"schema\":99}\n");
  EXPECT_FALSE(ParsedTrace::Parse(newer).ok());

  std::istringstream garbage("{\"type\":\"event\"\n");
  util::StatusOr<ParsedTrace> bad = ParsedTrace::Parse(garbage);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 1"), std::string::npos);

  std::istringstream untyped("{\"kind\":\"tick\"}\n");
  EXPECT_FALSE(ParsedTrace::Parse(untyped).ok());
}

// -------------------------------------------------------------- Recorder

TEST(RecorderTest, DisabledRecorderDropsEverything) {
  Recorder recorder;  // no sink
  EXPECT_FALSE(recorder.enabled());
  recorder.Count("x");
  recorder.Gauge("y", 1.0);
  EXPECT_EQ(recorder.counter("x"), 0);
  EXPECT_TRUE(recorder.stats().empty());
}

TEST(RecorderTest, CountersAccumulateAndGaugesOverwrite) {
  std::ostringstream sink;
  Recorder recorder(&sink);
  recorder.Count("ticks");
  recorder.Count("ticks", 9);
  recorder.Gauge("qps", 1.0);
  recorder.Gauge("qps", 2.0);
  EXPECT_EQ(recorder.counter("ticks"), 10);
  recorder.Finish();
  recorder.Finish();  // idempotent: stats are flushed once

  std::istringstream in(sink.str());
  ParsedTrace trace = ParsedTrace::Parse(in).value();
  ASSERT_EQ(trace.stats.size(), 2u);
  EXPECT_EQ(trace.stats[0], (StatRecord{"ticks", 10.0, false}));
  EXPECT_EQ(trace.stats[1], (StatRecord{"qps", 2.0, true}));
}

TEST(RecorderTest, TatonnementSnapshotBecomesUmpireRecords) {
  market::TatonnementResult result;
  result.prices = market::PriceVector{2.0, 0.5};
  result.excess_demand = market::QuantityVector({3, -1});
  result.iterations = 17;

  AllocatorSnapshot snap = SnapshotFromTatonnement(result);
  EXPECT_EQ(snap.mechanism, "Tatonnement");
  EXPECT_TRUE(snap.has_umpire());
  EXPECT_FALSE(snap.has_agents());

  std::ostringstream sink;
  Recorder recorder(&sink);
  recorder.RecordSnapshot(result.iterations, snap);
  recorder.Finish();

  std::istringstream in(sink.str());
  ParsedTrace trace = ParsedTrace::Parse(in).value();
  ASSERT_EQ(trace.umpire.size(), 2u);
  EXPECT_EQ(trace.umpire[0].iter, 17);
  EXPECT_DOUBLE_EQ(trace.umpire[0].price, 2.0);
  EXPECT_DOUBLE_EQ(trace.umpire[0].excess, 3.0);
  EXPECT_DOUBLE_EQ(trace.umpire[1].price, 0.5);
  EXPECT_DOUBLE_EQ(trace.umpire[1].excess, -1.0);
}

// -------------------------------------------------------------- Analysis

ParsedTrace TraceWithMeta(int64_t period_us) {
  ParsedTrace trace;
  trace.has_meta = true;
  trace.meta.period_us = period_us;
  trace.meta.classes = 1;
  return trace;
}

PriceRecord MakePrice(int64_t t_us, int node, int class_id, double price,
                      int64_t planned) {
  PriceRecord r;
  r.t_us = t_us;
  r.node = node;
  r.class_id = class_id;
  r.price = price;
  r.planned = planned;
  return r;
}

TEST(AnalysisTest, PriceVarianceOnlyCountsOfferingNodes) {
  ParsedTrace trace = TraceWithMeta(1000);
  // Period 0: two offering nodes at 2.0 and 8.0, one node out of the
  // market (planned=0) parked at the floor — it must not count.
  trace.prices.push_back(MakePrice(0, 0, 0, 2.0, 1));
  trace.prices.push_back(MakePrice(0, 1, 0, 8.0, 1));
  trace.prices.push_back(MakePrice(0, 2, 0, 1e-6, 0));
  // Period 1: both offering nodes agree.
  trace.prices.push_back(MakePrice(1000, 0, 0, 4.0, 1));
  trace.prices.push_back(MakePrice(1000, 1, 0, 4.0, 1));

  std::vector<PriceDispersion> rows = PriceVarianceByPeriod(trace);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].period, 0);
  EXPECT_EQ(rows[0].nodes, 2);  // floor-parked node excluded
  EXPECT_DOUBLE_EQ(rows[0].mean, 5.0);
  EXPECT_DOUBLE_EQ(rows[0].variance, 9.0);
  EXPECT_GT(rows[0].log_variance, 0.0);
  EXPECT_EQ(rows[1].period, 1);
  EXPECT_DOUBLE_EQ(rows[1].variance, 0.0);
  EXPECT_DOUBLE_EQ(rows[1].log_variance, 0.0);
}

TEST(AnalysisTest, PriceVarianceFallsBackWhenNobodyPlansSupply) {
  ParsedTrace trace = TraceWithMeta(1000);
  trace.prices.push_back(MakePrice(0, 0, 0, 1.0, 0));
  trace.prices.push_back(MakePrice(0, 1, 0, 3.0, 0));
  std::vector<PriceDispersion> rows = PriceVarianceByPeriod(trace);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].nodes, 2);
  EXPECT_DOUBLE_EQ(rows[0].mean, 2.0);
}

EventRecord MakeEvent(EventRecord::Kind kind, int64_t t_us, int class_id,
                      int messages = 0) {
  EventRecord e;
  e.kind = kind;
  e.t_us = t_us;
  e.class_id = class_id;
  e.messages = messages;
  return e;
}

TEST(AnalysisTest, LoadByPeriodBucketsAndEquilibrium) {
  ParsedTrace trace = TraceWithMeta(1000);
  using K = EventRecord::Kind;
  // Period 0: hot — 1 assign, 3 rejects (excess 0.75).
  trace.events.push_back(MakeEvent(K::kArrival, 0, 0));
  trace.events.push_back(MakeEvent(K::kAssign, 10, 0, 5));
  trace.events.push_back(MakeEvent(K::kReject, 20, 0, 5));
  trace.events.push_back(MakeEvent(K::kReject, 30, 0, 5));
  trace.events.push_back(MakeEvent(K::kReject, 40, 0, 5));
  // Periods 1..3: settled — assigns only.
  for (int64_t p = 1; p <= 3; ++p) {
    trace.events.push_back(MakeEvent(K::kAssign, p * 1000, 0, 5));
  }
  std::vector<PeriodLoad> loads = LoadByPeriod(trace);
  ASSERT_EQ(loads.size(), 4u);
  EXPECT_EQ(loads[0].arrivals, 1);
  EXPECT_EQ(loads[0].assigns, 1);
  EXPECT_EQ(loads[0].rejects, 3);
  EXPECT_EQ(loads[0].messages, 20);
  EXPECT_DOUBLE_EQ(loads[0].ExcessRatio(), 0.75);
  EXPECT_DOUBLE_EQ(loads[1].ExcessRatio(), 0.0);

  EquilibriumResult eq =
      TimeToEquilibrium(loads, trace.meta, /*band=*/0.1, /*window=*/3);
  ASSERT_TRUE(eq.found);
  EXPECT_EQ(eq.period, 1);  // first period of the settled window
  EXPECT_DOUBLE_EQ(eq.time_ms, util::ToMillis(1000));

  // A band the hot period satisfies finds period 0; an impossible window
  // reports "not reached".
  EXPECT_EQ(TimeToEquilibrium(loads, trace.meta, 0.8, 4).period, 0);
  EXPECT_FALSE(TimeToEquilibrium(loads, trace.meta, 0.1, 4).found);
}

TEST(AnalysisTest, TrackingCountsArrivalsVsCompletionsPerBucket) {
  ParsedTrace trace = TraceWithMeta(1000);
  using K = EventRecord::Kind;
  // Bucket 0: 2 arrivals, 1 completion. Bucket 1: 0 arrivals, 1
  // completion. Tracking error = |2-1| + |0-1| = 2.
  trace.events.push_back(MakeEvent(K::kArrival, 0, 0));
  trace.events.push_back(MakeEvent(K::kArrival, 100, 0));
  trace.events.push_back(MakeEvent(K::kComplete, 500, 0));
  trace.events.push_back(MakeEvent(K::kComplete, 1500, 0));
  std::vector<TrackingSeries> tracking = ComputeTracking(trace, 1000);
  ASSERT_EQ(tracking.size(), 1u);
  EXPECT_EQ(tracking[0].arrivals, (std::vector<int64_t>{2, 0}));
  EXPECT_EQ(tracking[0].completions, (std::vector<int64_t>{1, 1}));
  EXPECT_EQ(tracking[0].total_error, 2);
}

TEST(AnalysisTest, FaultRecoveryReportDetectsReconvergence) {
  ParsedTrace trace = TraceWithMeta(1000);
  using K = EventRecord::Kind;
  // Period 0 (pre-fault): mild disagreement between the two nodes.
  trace.prices.push_back(MakePrice(0, 0, 0, 2.0, 1));
  trace.prices.push_back(MakePrice(0, 1, 0, 8.0, 1));
  // Crash in period 1, restart in period 2.
  EventRecord crash;
  crash.kind = K::kCrash;
  crash.t_us = 1500;
  crash.node = 0;
  trace.events.push_back(crash);
  EventRecord restart;
  restart.kind = K::kRestart;
  restart.t_us = 2500;
  restart.node = 0;
  trace.events.push_back(restart);
  // Period 2: the restarted node re-enters at default prices — dispersion
  // spikes. Period 3: re-learned, dispersion back below the pre-fault
  // level.
  trace.prices.push_back(MakePrice(2000, 0, 0, 1.0, 1));
  trace.prices.push_back(MakePrice(2000, 1, 0, 20.0, 1));
  trace.prices.push_back(MakePrice(3000, 0, 0, 4.0, 1));
  trace.prices.push_back(MakePrice(3000, 1, 0, 4.0, 1));

  std::vector<FaultRecovery> rows = FaultRecoveryReport(trace);
  ASSERT_EQ(rows.size(), 2u);

  const FaultRecovery& after_crash = rows[0];
  EXPECT_EQ(after_crash.kind, K::kCrash);
  EXPECT_EQ(after_crash.node, 0);
  EXPECT_EQ(after_crash.fault_period, 1);
  // ln-variance of {2, 8} = (ln 2)^2 (population, two points).
  double ln2 = std::log(2.0);
  EXPECT_NEAR(after_crash.pre_fault_variance, ln2 * ln2, 1e-12);
  EXPECT_GT(after_crash.peak_variance, after_crash.pre_fault_variance);
  ASSERT_TRUE(after_crash.reconverged);
  EXPECT_EQ(after_crash.recovery_period, 3);
  EXPECT_DOUBLE_EQ(after_crash.recovery_ms, util::ToMillis(3 * 1000 - 1500));

  const FaultRecovery& after_restart = rows[1];
  EXPECT_EQ(after_restart.kind, K::kRestart);
  EXPECT_EQ(after_restart.fault_period, 2);
  ASSERT_TRUE(after_restart.reconverged);
  EXPECT_EQ(after_restart.recovery_period, 3);
}

// ------------------------------------------------------------- RunReport

TEST(RunReportTest, DocumentShape) {
  RunReport report("Fig. 4");
  report.SetField("seed", int64_t{42});
  Json metrics = Json::MakeObject();
  metrics.Set("completed", int64_t{10});
  report.Add("QA-NT", std::move(metrics));

  Json doc = report.ToJson();
  EXPECT_EQ(doc.GetInt("schema"), kReportSchemaVersion);
  EXPECT_EQ(doc.GetString("bench"), "Fig. 4");
  EXPECT_EQ(doc.GetInt("seed"), 42);
  const Json* runs = doc.Find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->array().size(), 1u);
  EXPECT_EQ(runs->array()[0].GetString("label"), "QA-NT");
  EXPECT_EQ(runs->array()[0].Find("metrics")->GetInt("completed"), 10);
}

// --------------------------------------------------------------- Logging

TEST(LoggingTest, ParseLogLevelSpellings) {
  using util::LogLevel;
  LogLevel level = LogLevel::kWarning;
  EXPECT_TRUE(util::ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(util::ParseLogLevel("INFO", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(util::ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(util::ParseLogLevel("Error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(util::ParseLogLevel("0", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(util::ParseLogLevel("3", &level));
  EXPECT_EQ(level, LogLevel::kError);

  level = LogLevel::kInfo;
  EXPECT_FALSE(util::ParseLogLevel("loud", &level));
  EXPECT_FALSE(util::ParseLogLevel("", &level));
  EXPECT_FALSE(util::ParseLogLevel("4", &level));
  EXPECT_EQ(level, LogLevel::kInfo);  // untouched on failure
}

TEST(LoggingTest, VTimeClockScopesNest) {
  // The providers themselves are thread-local internals; what we can lock
  // down here is that installing and unwinding nested scopes is balanced
  // (no crash, inner scope restores the outer one on destruction).
  int64_t outer_now = 1000;
  int64_t inner_now = 2000;
  auto read = [](const void* ctx) {
    return *static_cast<const int64_t*>(ctx);
  };
  util::ScopedVTimeClock outer(read, &outer_now);
  {
    util::ScopedVTimeClock inner(read, &inner_now);
    QA_LOG(Debug) << "inner scope";  // below default level: dropped
  }
  QA_LOG(Debug) << "outer scope";
}

// ----------------------------------------------------------- GoldenTrace

/// Runs the checked-in golden scenario and returns the trace bytes: a tiny
/// three-node federation under QA-NT with stratified-sample(2), exercising
/// the sampled solicitation path, price/agent snapshots, and completions.
/// `shards` > 1 routes the run through the sharded fork-join core (with a
/// two-worker pool), which must not change a single byte.
std::string GenerateGoldenTrace(int shards = 1) {
  util::Rng rng(7);
  sim::TwoClassConfig scenario;
  scenario.num_nodes = 3;
  auto model = sim::BuildTwoClassCostModel(scenario, rng);

  workload::SinusoidConfig workload;
  workload.q1_peak_rate = 3.0;
  workload.frequency_hz = 0.5;
  workload.duration = 2 * util::kSecond;
  workload.num_origin_nodes = 3;
  util::Rng wl_rng(8);
  workload::Trace trace = workload::GenerateSinusoidWorkload(workload, wl_rng);

  std::ostringstream sink;
  {
    exec::ThreadPool pool(2);
    exec::PoolRunner runner(&pool);
    Recorder recorder(&sink);
    exec::RunSpec spec;
    spec.cost_model = model.get();
    spec.mechanism = "QA-NT";
    spec.trace = &trace;
    spec.period = 500 * kMillisecond;
    spec.seed = 7;
    spec.config.solicitation.policy =
        allocation::SolicitationPolicy::kStratifiedSample;
    spec.config.solicitation.fanout = 2;
    spec.config.recorder = &recorder;
    spec.config.shards = shards;
    if (shards > 1) spec.config.runner = &runner;
    exec::RunSpecOnce(spec);
    recorder.Finish();
  }
  return std::move(sink).str();
}

// The trace format's regression lock: the golden scenario must keep
// producing byte-identical JSONL. Any diff means either the schema or the
// simulator's observable behavior changed — bump kTraceSchemaVersion /
// document the change in SCHEMA.md, then regenerate with
//   QA_UPDATE_GOLDEN=1 ./obs_test --gtest_filter='*GoldenScenario*'
TEST(GoldenTraceTest, GoldenScenarioReproducesCheckedInBytes) {
  const std::string golden_path =
      std::string(QA_TEST_SOURCE_DIR) + "/tests/golden/trace_tiny.jsonl";
  std::string bytes = GenerateGoldenTrace();

  if (std::getenv("QA_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << bytes;
    return;
  }

  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << golden_path << " missing; regenerate with QA_UPDATE_GOLDEN=1";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(bytes, golden.str())
      << "golden trace drifted; if the change is intentional, update "
         "SCHEMA.md and regenerate with QA_UPDATE_GOLDEN=1";

  // The golden bytes must also still parse under the current reader.
  std::istringstream stream(bytes);
  util::StatusOr<ParsedTrace> parsed = ParsedTrace::Parse(stream);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(parsed->has_meta);
  EXPECT_EQ(parsed->meta.solicitation, "stratified-sample");
  EXPECT_EQ(parsed->meta.fanout, 2);
  EXPECT_GT(parsed->events.size(), 0u);
  EXPECT_GT(parsed->prices.size(), 0u);
}

// Sharding is an execution layout, not an observable: the golden scenario
// split over 4 shards must reproduce the checked-in bytes verbatim. This
// pins the cross-shard merge to the same regression lock as the schema —
// an ordering bug in the barrier merge fails here against a committed
// artifact, not merely against a same-binary inline rerun.
TEST(GoldenTraceTest, GoldenScenarioIsByteIdenticalUnderSharding) {
  const std::string golden_path =
      std::string(QA_TEST_SOURCE_DIR) + "/tests/golden/trace_tiny.jsonl";
  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << golden_path << " missing; regenerate with QA_UPDATE_GOLDEN=1";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(GenerateGoldenTrace(/*shards=*/4), golden.str())
      << "sharded run diverged from the golden trace: the conservative "
         "window merge no longer reproduces the inline event order";
}

/// The hierarchical twin of the golden scenario: six nodes split into two
/// clusters of three, top tier sampling both clusters, members solicited
/// with stratified-sample(2). Locks the v5 cluster fields — meta
/// clusters/top_fanout, per-event cluster/clusters_asked, and the periodic
/// `cluster` ledger records — against a checked-in artifact.
std::string GenerateHierGoldenTrace(int shards = 1) {
  util::Rng rng(7);
  sim::TwoClassConfig scenario;
  scenario.num_nodes = 6;
  auto model = sim::BuildTwoClassCostModel(scenario, rng);

  workload::SinusoidConfig workload;
  workload.q1_peak_rate = 6.0;
  workload.frequency_hz = 0.5;
  workload.duration = 2 * util::kSecond;
  workload.num_origin_nodes = 6;
  util::Rng wl_rng(8);
  workload::Trace trace = workload::GenerateSinusoidWorkload(workload, wl_rng);

  std::ostringstream sink;
  {
    exec::ThreadPool pool(2);
    exec::PoolRunner runner(&pool);
    Recorder recorder(&sink);
    exec::RunSpec spec;
    spec.cost_model = model.get();
    spec.mechanism = "QA-NT";
    spec.trace = &trace;
    spec.period = 500 * kMillisecond;
    spec.seed = 7;
    spec.config.solicitation.policy =
        allocation::SolicitationPolicy::kStratifiedSample;
    spec.config.solicitation.fanout = 2;
    spec.config.cluster_plan =
        allocation::ClusterPlan::Uniform(/*num_nodes=*/6, /*num_clusters=*/2,
                                         /*top_fanout=*/2);
    spec.config.recorder = &recorder;
    spec.config.shards = shards;
    if (shards > 1) spec.config.runner = &runner;
    exec::RunSpecOnce(spec);
    recorder.Finish();
  }
  return std::move(sink).str();
}

// Same regression lock as GoldenScenarioReproducesCheckedInBytes, for the
// two-tier market. Regenerate with
//   QA_UPDATE_GOLDEN=1 ./obs_test --gtest_filter='*HierGolden*'
TEST(GoldenTraceTest, HierGoldenScenarioReproducesCheckedInBytes) {
  const std::string golden_path =
      std::string(QA_TEST_SOURCE_DIR) + "/tests/golden/trace_hier_tiny.jsonl";
  std::string bytes = GenerateHierGoldenTrace();

  if (std::getenv("QA_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << bytes;
    return;
  }

  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << golden_path << " missing; regenerate with QA_UPDATE_GOLDEN=1";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(bytes, golden.str())
      << "hierarchical golden trace drifted; if the change is intentional, "
         "update SCHEMA.md and regenerate with QA_UPDATE_GOLDEN=1";

  // The v5 cluster surface must actually be present and parse.
  std::istringstream stream(bytes);
  util::StatusOr<ParsedTrace> parsed = ParsedTrace::Parse(stream);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(parsed->has_meta);
  EXPECT_EQ(parsed->meta.clusters, 2);
  EXPECT_EQ(parsed->meta.top_fanout, 2);
  EXPECT_GT(parsed->clusters.size(), 0u);
  bool routed = false;
  for (const EventRecord& event : parsed->events) {
    if (event.kind == EventRecord::Kind::kAssign && event.cluster >= 0) {
      routed = true;
      EXPECT_GT(event.clusters_asked, 0);
    }
  }
  EXPECT_TRUE(routed) << "no assign event carried a cluster route";
}

// The hierarchical golden scenario split over 4 shards must also
// reproduce the checked-in bytes: two-stage dispatch (top-tier routing +
// member settlement) is mediator-lane work, so shard layout must not leak
// into the trace.
TEST(GoldenTraceTest, HierGoldenScenarioIsByteIdenticalUnderSharding) {
  const std::string golden_path =
      std::string(QA_TEST_SOURCE_DIR) + "/tests/golden/trace_hier_tiny.jsonl";
  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << golden_path << " missing; regenerate with QA_UPDATE_GOLDEN=1";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(GenerateHierGoldenTrace(/*shards=*/4), golden.str())
      << "sharded hierarchical run diverged from the golden trace";
}

}  // namespace
}  // namespace qa::obs
