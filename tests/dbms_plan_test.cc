#include <algorithm>

#include <gtest/gtest.h>

#include "dbms/database.h"
#include "dbms/plan.h"

namespace qa::dbms {
namespace {

/// Direct operator-level tests: plans are built by hand (no planner) and
/// executed against a small database.
class PlanOperatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Table left("l", Schema({{"k", ValueType::kInt},
                            {"v", ValueType::kString}}));
    left.AppendUnchecked({Value(int64_t{1}), Value(std::string("a"))});
    left.AppendUnchecked({Value(int64_t{2}), Value(std::string("b"))});
    left.AppendUnchecked({Value(int64_t{2}), Value(std::string("b2"))});
    left.AppendUnchecked({Value(int64_t{3}), Value(std::string("c"))});
    left.AppendUnchecked({Value::Null(), Value(std::string("n"))});
    ASSERT_TRUE(db_.CreateTable(std::move(left)).ok());

    Table right("r", Schema({{"k", ValueType::kInt},
                             {"w", ValueType::kDouble}}));
    right.AppendUnchecked({Value(int64_t{2}), Value(20.0)});
    right.AppendUnchecked({Value(int64_t{3}), Value(30.0)});
    right.AppendUnchecked({Value(int64_t{3}), Value(31.0)});
    right.AppendUnchecked({Value(int64_t{4}), Value(40.0)});
    right.AppendUnchecked({Value::Null(), Value(0.0)});
    ASSERT_TRUE(db_.CreateTable(std::move(right)).ok());
  }

  PlanPtr Scan(const std::string& name, ExprPtr filter = nullptr) {
    return std::make_unique<ScanNode>(name,
                                      db_.GetTable(name)->schema(),
                                      std::move(filter));
  }

  Database db_;
};

TEST_F(PlanOperatorTest, ScanReadsAllRows) {
  ExecStats stats;
  Table out = Scan("l")->Execute(db_, &stats);
  EXPECT_EQ(out.num_rows(), 5);
  EXPECT_EQ(stats.rows_scanned, 5);
  EXPECT_GT(stats.table_bytes.at("l"), 0);
}

TEST_F(PlanOperatorTest, ScanWithFilter) {
  ExprPtr pred = Expr::Compare(CompareOp::kGe, Expr::Column(0),
                               Expr::Literal(Value(int64_t{2})));
  Table out = Scan("l", pred)->Execute(db_, nullptr);
  EXPECT_EQ(out.num_rows(), 3);  // NULL key row excluded by comparison
}

TEST_F(PlanOperatorTest, HashJoinMatchesAndSkipsNulls) {
  HashJoinNode join(Scan("l"), Scan("r"), 0, 0);
  ExecStats stats;
  Table out = join.Execute(db_, &stats);
  // k=2 matches (2 left x 1 right) + k=3 (1 x 2) = 4; NULLs never join.
  EXPECT_EQ(out.num_rows(), 4);
  EXPECT_EQ(out.schema().num_columns(), 4);
  EXPECT_EQ(stats.hash_build_rows, 5);
  EXPECT_EQ(stats.hash_probe_rows, 5);
}

TEST_F(PlanOperatorTest, MergeJoinEqualsHashJoin) {
  HashJoinNode hash(Scan("l"), Scan("r"), 0, 0);
  MergeJoinNode merge(Scan("l"), Scan("r"), 0, 0);
  Table h = hash.Execute(db_, nullptr);
  Table m = merge.Execute(db_, nullptr);
  ASSERT_EQ(h.num_rows(), m.num_rows());
  auto keyset = [](const Table& t) {
    std::vector<std::pair<int64_t, double>> out;
    for (const Row& r : t.rows()) {
      out.emplace_back(r[0].AsInt(), r[3].AsDouble());
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(keyset(h), keyset(m));
}

TEST_F(PlanOperatorTest, NestedLoopJoinWithPredicate) {
  // l.k < r.k (non-equi): NULLs drop out via three-valued logic.
  ExprPtr pred = Expr::Compare(CompareOp::kLt, Expr::Column(0),
                               Expr::Column(2));
  NestedLoopJoinNode join(Scan("l"), Scan("r"), pred);
  ExecStats stats;
  Table out = join.Execute(db_, &stats);
  // pairs: k_l=1 with {2,3,3,4} = 4; k_l=2 (x2 rows) with {3,3,4} = 6;
  // k_l=3 with {4} = 1  => 11.
  EXPECT_EQ(out.num_rows(), 11);
  EXPECT_EQ(stats.nested_loop_compares, 25);
}

TEST_F(PlanOperatorTest, NestedLoopCrossProduct) {
  NestedLoopJoinNode join(Scan("l"), Scan("r"), nullptr);
  Table out = join.Execute(db_, nullptr);
  EXPECT_EQ(out.num_rows(), 25);
}

TEST_F(PlanOperatorTest, FilterNode) {
  ExprPtr pred = Expr::Compare(CompareOp::kEq, Expr::Column(1),
                               Expr::Literal(Value(std::string("b"))));
  FilterNode filter(Scan("l"), pred);
  Table out = filter.Execute(db_, nullptr);
  EXPECT_EQ(out.num_rows(), 1);
}

TEST_F(PlanOperatorTest, ProjectSelectsAndRenames) {
  ProjectNode project(Scan("l"), {1}, {"name"});
  Table out = project.Execute(db_, nullptr);
  EXPECT_EQ(out.schema().num_columns(), 1);
  EXPECT_EQ(out.schema().column(0).name, "name");
  EXPECT_EQ(out.num_rows(), 5);
}

TEST_F(PlanOperatorTest, SortIsStableAndNullsFirst) {
  SortNode sort(Scan("l"), std::vector<int>{0});
  Table out = sort.Execute(db_, nullptr);
  ASSERT_EQ(out.num_rows(), 5);
  EXPECT_TRUE(out.row(0)[0].is_null());
  EXPECT_EQ(out.row(1)[0].AsInt(), 1);
  // Stable: the two k=2 rows keep insertion order.
  EXPECT_EQ(out.row(2)[1].AsString(), "b");
  EXPECT_EQ(out.row(3)[1].AsString(), "b2");
}

TEST_F(PlanOperatorTest, GroupByCountsPerKey) {
  std::vector<GroupByNode::Agg> aggs;
  aggs.push_back({Aggregate::Fn::kCount, -1, "n"});
  GroupByNode group(Scan("r"), {0}, std::move(aggs));
  Table out = group.Execute(db_, nullptr);
  // keys: 2, 3, 4, NULL.
  EXPECT_EQ(out.num_rows(), 4);
  int64_t total = 0;
  for (const Row& row : out.rows()) total += row[1].AsInt();
  EXPECT_EQ(total, 5);
}

TEST_F(PlanOperatorTest, GroupBySumSkipsNulls) {
  std::vector<GroupByNode::Agg> aggs;
  aggs.push_back({Aggregate::Fn::kSum, 1, "sum_w"});
  aggs.push_back({Aggregate::Fn::kMin, 1, "min_w"});
  aggs.push_back({Aggregate::Fn::kMax, 1, "max_w"});
  GroupByNode group(Scan("r"), {}, std::move(aggs));
  Table out = group.Execute(db_, nullptr);
  ASSERT_EQ(out.num_rows(), 1);
  EXPECT_DOUBLE_EQ(out.row(0)[0].AsDouble(), 121.0);
  EXPECT_DOUBLE_EQ(out.row(0)[1].AsDouble(), 0.0);
  EXPECT_DOUBLE_EQ(out.row(0)[2].AsDouble(), 40.0);
}

TEST_F(PlanOperatorTest, SortDescending) {
  SortNode sort(Scan("r"), std::vector<SortKey>{{1, true}});
  Table out = sort.Execute(db_, nullptr);
  ASSERT_EQ(out.num_rows(), 5);
  // Descending on w: 40, 31, 30, 20, 0 (NULL key row's w is 0.0).
  EXPECT_DOUBLE_EQ(out.row(0)[1].AsDouble(), 40.0);
  EXPECT_DOUBLE_EQ(out.row(1)[1].AsDouble(), 31.0);
  EXPECT_DOUBLE_EQ(out.row(4)[1].AsDouble(), 0.0);
}

TEST_F(PlanOperatorTest, LimitTruncates) {
  LimitNode limit(Scan("l"), 2);
  Table out = limit.Execute(db_, nullptr);
  EXPECT_EQ(out.num_rows(), 2);
  LimitNode zero(Scan("l"), 0);
  EXPECT_EQ(zero.Execute(db_, nullptr).num_rows(), 0);
  LimitNode big(Scan("l"), 100);
  EXPECT_EQ(big.Execute(db_, nullptr).num_rows(), 5);
  EXPECT_EQ(LimitNode(Scan("l"), 3).Signature(), "L(SCAN(l))");
}

TEST_F(PlanOperatorTest, SignaturesEncodeShape) {
  HashJoinNode join(Scan("l"), Scan("r"), 0, 0);
  EXPECT_EQ(join.Signature(), "HJ(SCAN(l),SCAN(r))");
  ExprPtr pred = Expr::Compare(CompareOp::kEq, Expr::Column(0),
                               Expr::Literal(Value(int64_t{1})));
  EXPECT_EQ(Scan("l", pred)->Signature(), "SCAN(l|F)");
  SortNode sort(Scan("r"), std::vector<int>{0});
  EXPECT_EQ(sort.Signature(), "S(SCAN(r))");
}

TEST_F(PlanOperatorTest, DescribeMentionsOperators) {
  HashJoinNode join(Scan("l"), Scan("r"), 0, 0);
  std::string text = join.Describe(0);
  EXPECT_NE(text.find("HASH_JOIN"), std::string::npos);
  EXPECT_NE(text.find("SCAN l"), std::string::npos);
  EXPECT_NE(text.find("SCAN r"), std::string::npos);
}

}  // namespace
}  // namespace qa::dbms
