// Fault-injection subsystem + market-protocol hardening tests: plan and
// config validation, crash-with-state-loss semantics (conservation, stale
// completions, QA-NT re-learning), degraded capacity, lossy links,
// partitions, retry backoff escalation, and the deterministic chaos soak.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "allocation/factory.h"
#include "allocation/qa_nt_allocator.h"
#include "exec/experiment_runner.h"
#include "obs/analysis.h"
#include "obs/recorder.h"
#include "obs/trace_reader.h"
#include "sim/faults/fault_injector.h"
#include "sim/faults/fault_plan.h"
#include "sim/federation.h"
#include "sim/scenario.h"
#include "util/rng.h"
#include "workload/trace.h"

namespace qa::sim {
namespace {

using util::kMillisecond;
using util::kSecond;

workload::Trace MakeTrace(int n, util::VDuration gap,
                          query::QueryClassId k) {
  workload::Trace trace;
  for (int i = 0; i < n; ++i) {
    workload::Arrival a;
    a.time = i * gap;
    a.class_id = k;
    a.origin = 0;
    a.cost_jitter = 1.0;
    trace.Add(a);
  }
  return trace;
}

// ------------------------------------------------------------ Validation

TEST(FaultPlanTest, EmptyPlanIsValid) {
  faults::FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_TRUE(plan.Validate(4).ok());
}

TEST(FaultPlanTest, RejectsBadNodesAndWindows) {
  faults::FaultPlan plan;
  plan.crashes.push_back({/*node=*/5, /*at=*/kSecond, /*restart_at=*/2 * kSecond});
  util::Status s = plan.Validate(4);
  EXPECT_EQ(s.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("crashes[0]"), std::string::npos);

  plan = {};
  plan.crashes.push_back({0, 2 * kSecond, kSecond});  // restart before crash
  EXPECT_FALSE(plan.Validate(4).ok());

  plan = {};
  plan.degrades.push_back({0, kSecond, 2 * kSecond, /*factor=*/0.0});
  EXPECT_FALSE(plan.Validate(4).ok());
  plan.degrades[0].factor = 1.5;
  EXPECT_FALSE(plan.Validate(4).ok());
  plan.degrades[0].factor = 0.5;
  EXPECT_TRUE(plan.Validate(4).ok());

  plan = {};
  faults::LinkFault link;
  link.from = 0;
  link.until = kSecond;
  link.drop_probability = 1.0;  // certain loss never terminates
  plan.links.push_back(link);
  EXPECT_FALSE(plan.Validate(4).ok());
  plan.links[0].drop_probability = 0.5;
  plan.links[0].extra_latency = -1;
  EXPECT_FALSE(plan.Validate(4).ok());
  plan.links[0].extra_latency = kMillisecond;
  EXPECT_TRUE(plan.Validate(4).ok());

  plan = {};
  faults::PartitionFault partition;
  partition.from = 0;
  partition.until = kSecond;  // no nodes listed
  plan.partitions.push_back(partition);
  EXPECT_FALSE(plan.Validate(4).ok());
  plan.partitions[0].nodes = {1, 2};
  EXPECT_TRUE(plan.Validate(4).ok());
}

TEST(ValidateConfigTest, RejectsMisconfiguredRuns) {
  FederationConfig config;
  EXPECT_TRUE(ValidateConfig(config, 2).ok());

  config.period = 0;
  EXPECT_EQ(ValidateConfig(config, 2).code(),
            util::StatusCode::kInvalidArgument);
  config.period = 500 * kMillisecond;

  config.market_tick_divisor = 0;
  EXPECT_FALSE(ValidateConfig(config, 2).ok());
  config.market_tick_divisor = 8;

  config.message_latency = -1;
  EXPECT_FALSE(ValidateConfig(config, 2).ok());
  config.message_latency = kMillisecond;

  config.max_retries = -1;
  EXPECT_FALSE(ValidateConfig(config, 2).ok());
  config.max_retries = 200;

  config.max_backoff_periods = 0;
  EXPECT_FALSE(ValidateConfig(config, 2).ok());
  config.max_backoff_periods = 4;

  config.query_deadline = -1;
  EXPECT_FALSE(ValidateConfig(config, 2).ok());
  config.query_deadline = 0;

  config.outages.push_back({/*node=*/7, kSecond, 2 * kSecond});
  util::Status s = ValidateConfig(config, 2);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("outages[0]"), std::string::npos);
  config.outages[0].node = 0;
  config.outages[0].until = config.outages[0].from;  // empty window
  EXPECT_FALSE(ValidateConfig(config, 2).ok());
  config.outages[0].until = 2 * kSecond;
  EXPECT_TRUE(ValidateConfig(config, 2).ok());

  // A malformed FaultPlan is caught through the same funnel.
  config.faults.crashes.push_back({0, 2 * kSecond, kSecond});
  EXPECT_FALSE(ValidateConfig(config, 2).ok());
}

TEST(ValidateConfigTest, RejectsMisconfiguredSolicitation) {
  FederationConfig config;

  // Broadcast ignores the fanout knob entirely, even when it is zero.
  config.solicitation.policy = allocation::SolicitationPolicy::kBroadcast;
  config.solicitation.fanout = 0;
  EXPECT_TRUE(ValidateConfig(config, 2).ok());

  // A sampled policy must ask at least one node per attempt.
  config.solicitation.policy =
      allocation::SolicitationPolicy::kUniformSample;
  config.solicitation.fanout = 0;
  util::Status zero = ValidateConfig(config, 2);
  EXPECT_EQ(zero.code(), util::StatusCode::kInvalidArgument);
  config.solicitation.fanout = -4;
  EXPECT_FALSE(ValidateConfig(config, 2).ok());
  config.solicitation.policy =
      allocation::SolicitationPolicy::kStratifiedSample;
  EXPECT_FALSE(ValidateConfig(config, 2).ok());

  // Oversized fanout is legal: the allocator clamps it to the candidate
  // set, reproducing broadcast (covered byte-for-byte in exec_test).
  config.solicitation.fanout = 10000;
  EXPECT_TRUE(ValidateConfig(config, 2).ok());
  config.solicitation.policy = allocation::SolicitationPolicy::kUniformSample;
  config.solicitation.fanout = 1;
  EXPECT_TRUE(ValidateConfig(config, 2).ok());
}

TEST(FaultPlanTest, RejectsBadSurges) {
  faults::FaultPlan plan;
  plan.surges.push_back(
      {faults::SurgeFault::kAllClasses, kSecond, 2 * kSecond, 3.0});
  EXPECT_TRUE(plan.Validate(4).ok());

  // Multipliers must be strictly positive (0.5 is legal — a lull).
  plan.surges[0].multiplier = 0.0;
  util::Status s = plan.Validate(4);
  EXPECT_EQ(s.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("multiplier"), std::string::npos);
  plan.surges[0].multiplier = -2.0;
  EXPECT_FALSE(plan.Validate(4).ok());
  plan.surges[0].multiplier = 0.5;
  EXPECT_TRUE(plan.Validate(4).ok());

  // Empty or backwards windows.
  plan.surges[0].until = plan.surges[0].from;
  EXPECT_FALSE(plan.Validate(4).ok());
  plan.surges[0].until = 2 * kSecond;

  // Class ids below the kAllClasses sentinel are nonsense.
  plan.surges[0].class_id = -2;
  EXPECT_FALSE(plan.Validate(4).ok());
  plan.surges[0].class_id = 1;
  EXPECT_TRUE(plan.Validate(4).ok());
}

TEST(FaultPlanTest, RejectsOverlappingSurgeWindows) {
  faults::FaultPlan plan;
  plan.surges.push_back({/*class_id=*/1, kSecond, 2 * kSecond, 3.0});
  plan.surges.push_back(
      {/*class_id=*/1, kSecond + 500 * kMillisecond, 3 * kSecond, 2.0});
  util::Status s = plan.Validate(4);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("overlaps"), std::string::npos);

  // Same window on a different class is fine...
  plan.surges[1].class_id = 0;
  EXPECT_TRUE(plan.Validate(4).ok());
  // ...but a global surge overlaps every class.
  plan.surges[1].class_id = faults::SurgeFault::kAllClasses;
  EXPECT_FALSE(plan.Validate(4).ok());
  // Back-to-back windows on the same class do not overlap ([1s,2s) then
  // [2s,3s)).
  plan.surges[1].class_id = 1;
  plan.surges[1].from = 2 * kSecond;
  plan.surges[1].until = 3 * kSecond;
  EXPECT_TRUE(plan.Validate(4).ok());
}

TEST(ValidateConfigTest, RejectsBadShedBoundsAndAdmission) {
  FederationConfig config;
  EXPECT_TRUE(ValidateConfig(config, 2).ok());

  // Shed bounds below 1 would shed everything on arrival.
  config.max_node_queue = 0;
  util::Status s = ValidateConfig(config, 2);
  EXPECT_EQ(s.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("max_node_queue"), std::string::npos);
  config.max_node_queue = -3;
  EXPECT_FALSE(ValidateConfig(config, 2).ok());
  config.max_node_queue = 1;
  EXPECT_TRUE(ValidateConfig(config, 2).ok());

  config.max_retry_backlog = 0;
  EXPECT_FALSE(ValidateConfig(config, 2).ok());
  config.max_retry_backlog = 64;
  EXPECT_TRUE(ValidateConfig(config, 2).ok());

  // Static admission needs a positive threshold.
  config.admission.policy = AdmissionPolicy::kStatic;
  config.admission.max_outstanding = 0;
  EXPECT_FALSE(ValidateConfig(config, 2).ok());
  config.admission.max_outstanding = 100;
  EXPECT_TRUE(ValidateConfig(config, 2).ok());

  // Price-signal admission needs a sane hysteresis band and warmup.
  config.admission.policy = AdmissionPolicy::kPriceSignal;
  config.admission.enter_ratio = 1.2;
  config.admission.exit_ratio = 1.5;  // inverted band
  EXPECT_FALSE(ValidateConfig(config, 2).ok());
  config.admission.enter_ratio = 3.0;
  config.admission.exit_ratio = 0.0;
  EXPECT_FALSE(ValidateConfig(config, 2).ok());
  config.admission.exit_ratio = 1.5;
  config.admission.warmup_periods = 0;
  EXPECT_FALSE(ValidateConfig(config, 2).ok());
  config.admission.warmup_periods = 2;
  EXPECT_TRUE(ValidateConfig(config, 2).ok());

  // The baseline tracking rate must stay inside [0, 1): 1 would snap the
  // baseline to the index every period and the ratio could never leave 1.
  config.admission.baseline_alpha = 1.0;
  EXPECT_FALSE(ValidateConfig(config, 2).ok());
  config.admission.baseline_alpha = -0.1;
  EXPECT_FALSE(ValidateConfig(config, 2).ok());
  config.admission.baseline_alpha = 0.05;
  EXPECT_TRUE(ValidateConfig(config, 2).ok());

  // Negative static threshold is rejected for every policy.
  config.admission.max_outstanding = -1;
  EXPECT_FALSE(ValidateConfig(config, 2).ok());
}

TEST(ValidateConfigDeathTest, RunAbortsOnInvalidConfig) {
  auto model = BuildFig1CostModel();
  allocation::AllocatorParams params;
  params.cost_model = model.get();
  auto alloc = allocation::CreateAllocator("Random", params);
  FederationConfig config;
  config.period = -1;
  Federation fed(model.get(), alloc.get(), config);
  workload::Trace trace = MakeTrace(1, 0, 0);
  EXPECT_DEATH(fed.Run(trace), "invalid FederationConfig");
}

// --------------------------------------------------------------- SimNode

TEST(SimNodeCrashTest, CrashFlushesStateAndCorrectsBusyTime) {
  SimNode node(0);
  QueryTask t1;
  t1.query_id = 1;
  t1.exec_time = 100 * kMillisecond;
  t1.work_units = 5.0;
  QueryTask t2 = t1;
  t2.query_id = 2;
  node.Enqueue(t1, 0);
  node.Enqueue(t2, 0);
  node.BeginNext(0);  // t1 running, would finish at 100 ms
  ASSERT_EQ(node.epoch(), 0);

  std::vector<QueryTask> lost = node.Crash(30 * kMillisecond);
  ASSERT_EQ(lost.size(), 2u);
  EXPECT_EQ(lost[0].query_id, 1);  // the running task first
  EXPECT_EQ(lost[1].query_id, 2);
  // BeginNext charged 100 ms up front; only 30 ms actually ran.
  EXPECT_EQ(node.busy_time(), 30 * kMillisecond);
  EXPECT_TRUE(node.idle());
  EXPECT_EQ(node.queue_length(), 0u);
  EXPECT_DOUBLE_EQ(node.QueuedWork(), 0.0);
  EXPECT_EQ(node.last_idle_at(), 30 * kMillisecond);
  EXPECT_EQ(node.epoch(), 1);
  EXPECT_EQ(node.completed(), 0);
}

// ----------------------------------------------------- Crash and restart

TEST(CrashTest, LostQueriesAreResubmittedAndConserved) {
  auto model = BuildFig1CostModel();
  allocation::AllocatorParams params;
  params.cost_model = model.get();
  auto alloc = allocation::CreateAllocator("Greedy", params);
  FederationConfig config;
  // Burst of 8 q1 at t=0 spreads over both nodes and queues deep; the
  // crash at 600 ms wipes node 0 mid-execution.
  config.faults.crashes.push_back({0, 600 * kMillisecond, 2 * kSecond});
  Federation fed(model.get(), alloc.get(), config);
  SimMetrics m = fed.Run(MakeTrace(8, 0, 0));
  EXPECT_GT(m.lost, 0);
  // Conservation: every arrival either completed or exhausted its budget.
  EXPECT_EQ(m.completed + m.dropped, 8);
  EXPECT_EQ(m.dropped, 0);
  EXPECT_EQ(m.completed, 8);
}

TEST(CrashTest, StaleCompletionsOfWipedTasksAreIgnored) {
  auto model = BuildFig1CostModel();
  allocation::AllocatorParams params;
  params.cost_model = model.get();
  auto alloc = allocation::CreateAllocator("Greedy", params);
  FederationConfig config;
  config.faults.crashes.push_back({0, 600 * kMillisecond, 2 * kSecond});
  Federation fed(model.get(), alloc.get(), config);
  SimMetrics m = fed.Run(MakeTrace(8, 0, 0));
  // The node's completion counter only counts its second incarnation:
  // every query completed exactly once system-wide.
  int64_t node_total = 0;
  for (int64_t c : m.node_completed) node_total += c;
  EXPECT_EQ(node_total, m.completed);
  EXPECT_EQ(static_cast<int64_t>(m.response_time_ms.count()), m.completed);
}

TEST(CrashTest, QaNtAgentRelearnsFromDefaultsAfterRestart) {
  auto model = BuildFig1CostModel();
  market::QaNtConfig qa_config;
  allocation::QaNtAllocator alloc(model.get(), 500 * kMillisecond,
                                  qa_config);
  // Exhaust node 0's period budget, then keep asking: each decline of an
  // evaluable class bumps its price (step 9), moving it off the default.
  market::QaNtAgent& agent = alloc.mutable_agent(0);
  for (int i = 0; i < 50; ++i) {
    if (agent.OnRequest(0)) agent.OnOfferAccepted(0);
  }
  bool moved = false;
  for (double p : alloc.agent(0).prices().values()) {
    if (p != qa_config.initial_price) moved = true;
  }
  ASSERT_TRUE(moved) << "test setup: prices never moved";

  alloc.OnNodeRestart(0, 3 * kSecond);
  for (double p : alloc.agent(0).prices().values()) {
    EXPECT_DOUBLE_EQ(p, qa_config.initial_price);
  }
  const market::QaNtAgentStats& stats = alloc.agent(0).stats();
  EXPECT_EQ(stats.requests_seen, 0);
  EXPECT_DOUBLE_EQ(alloc.agent(0).earnings(), 0.0);
}

TEST(CrashTest, RestartedQaNtNodeWinsWorkAgain) {
  auto model = BuildFig1CostModel();
  allocation::AllocatorParams params;
  params.cost_model = model.get();
  params.period = 500 * kMillisecond;
  auto alloc = allocation::CreateAllocator("QA-NT", params);
  std::ostringstream sink;
  obs::Recorder recorder(&sink);
  FederationConfig config;
  config.period = 500 * kMillisecond;
  config.recorder = &recorder;
  config.faults.crashes.push_back({0, 2 * kSecond, 5 * kSecond});
  Federation fed(model.get(), alloc.get(), config);
  // One q1 per 300 ms for 12 s straddles the crash and restart; node 0 is
  // the faster q1 node, so once re-learned it must win assignments again.
  SimMetrics m = fed.Run(MakeTrace(40, 300 * kMillisecond, 0));
  EXPECT_EQ(m.completed + m.dropped, 40);
  EXPECT_GT(m.lost, 0);  // the running query died with the node

  std::istringstream in(sink.str());
  util::StatusOr<obs::ParsedTrace> parsed = obs::ParsedTrace::Parse(in);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  bool crash_seen = false;
  bool restart_seen = false;
  bool assigned_after_restart = false;
  for (const obs::EventRecord& e : parsed->events) {
    if (e.kind == obs::EventRecord::Kind::kCrash && e.node == 0) {
      crash_seen = true;
    }
    if (e.kind == obs::EventRecord::Kind::kRestart && e.node == 0) {
      restart_seen = true;
    }
    if (e.kind == obs::EventRecord::Kind::kAssign && e.node == 0 &&
        e.t_us >= 5 * kSecond) {
      assigned_after_restart = true;
    }
  }
  EXPECT_TRUE(crash_seen);
  EXPECT_TRUE(restart_seen);
  EXPECT_TRUE(assigned_after_restart);

  // The recovery report sees the crash and the post-restart market
  // settling back down.
  std::vector<obs::FaultRecovery> recovery =
      obs::FaultRecoveryReport(*parsed);
  ASSERT_EQ(recovery.size(), 2u);
  EXPECT_EQ(recovery[0].kind, obs::EventRecord::Kind::kCrash);
  EXPECT_EQ(recovery[1].kind, obs::EventRecord::Kind::kRestart);

  // The equilibrium detector fires a second time after the restart: the
  // periods strictly after the restart settle back inside the excess-
  // demand band on their own.
  std::vector<obs::PeriodLoad> loads = obs::LoadByPeriod(*parsed);
  obs::EquilibriumResult before =
      obs::TimeToEquilibrium(loads, parsed->meta, 0.1, 2);
  EXPECT_TRUE(before.found);
  int restart_period = static_cast<int>(5 * kSecond / (500 * kMillisecond));
  std::vector<obs::PeriodLoad> tail;
  for (const obs::PeriodLoad& load : loads) {
    if (load.period > restart_period) tail.push_back(load);
  }
  ASSERT_FALSE(tail.empty());
  obs::EquilibriumResult after =
      obs::TimeToEquilibrium(tail, parsed->meta, 0.1, 2);
  EXPECT_TRUE(after.found);
}

// ---------------------------------------------------------------- Degrade

TEST(DegradeTest, HalvedSpeedDoublesExecutionByHand) {
  auto model = BuildFig1CostModel();
  allocation::AllocatorParams params;
  params.cost_model = model.get();
  auto alloc = allocation::CreateAllocator("Greedy", params);
  FederationConfig config;
  // Node 0 at half speed for the whole run. Greedy probes both nodes
  // (5 messages -> 3 ms delivery) and picks node 0 for q2 (100 ms vs
  // 500 ms); at half speed the 100 ms stretches to 200 ms:
  // response = 3 + 200 = 203 ms.
  config.faults.degrades.push_back({0, 0, 60 * kSecond, 0.5});
  Federation fed(model.get(), alloc.get(), config);
  SimMetrics m = fed.Run(MakeTrace(1, 0, 1));
  EXPECT_EQ(m.completed, 1);
  EXPECT_DOUBLE_EQ(m.MeanResponseMs(), 203.0);
}

// ------------------------------------------------------------ Lossy links

TEST(LinkFaultTest, LossySeededRunIsReproducibleAndLosesQueries) {
  auto run_once = [](uint64_t seed) {
    auto model = BuildFig1CostModel();
    allocation::AllocatorParams params;
    params.cost_model = model.get();
    auto alloc = allocation::CreateAllocator("Greedy", params);
    FederationConfig config;
    faults::LinkFault link;
    link.from = 0;
    link.until = 60 * kSecond;
    link.drop_probability = 0.3;
    link.extra_latency = 2 * kMillisecond;
    config.faults.links.push_back(link);
    config.faults.seed = seed;
    Federation fed(model.get(), alloc.get(), config);
    workload::Trace trace;
    for (int i = 0; i < 40; ++i) {
      workload::Arrival a;
      a.time = i * 250 * kMillisecond;
      a.class_id = i % 2;
      a.origin = 0;
      a.cost_jitter = 1.0;
      trace.Add(a);
    }
    return fed.Run(trace);
  };
  SimMetrics a = run_once(123);
  SimMetrics b = run_once(123);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.lost, b.lost);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_DOUBLE_EQ(a.MeanResponseMs(), b.MeanResponseMs());
  // At p=0.3 over 40 queries, something must have been lost or declined
  // through a dropped negotiation hop.
  EXPECT_GT(a.lost + a.retries, 0);
  EXPECT_EQ(a.completed + a.dropped, 40);
}

// ------------------------------------------------------------- Partitions

TEST(PartitionTest, QaNtRoutesAroundPartitionWithoutBounces) {
  auto model = BuildFig1CostModel();
  allocation::AllocatorParams params;
  params.cost_model = model.get();
  params.period = 500 * kMillisecond;
  auto alloc = allocation::CreateAllocator("QA-NT", params);
  FederationConfig config;
  config.period = 500 * kMillisecond;
  config.max_retries = 500;
  faults::PartitionFault partition;
  partition.nodes = {0};
  partition.from = 1 * kSecond;
  partition.until = 6 * kSecond;
  config.faults.partitions.push_back(partition);
  Federation fed(model.get(), alloc.get(), config);
  SimMetrics m = fed.Run(MakeTrace(20, 400 * kMillisecond, 0));
  // Negotiation times out against the partitioned node (a decline), so the
  // market routes around it: no network bounces, no losses (state intact).
  EXPECT_EQ(m.bounced, 0);
  EXPECT_EQ(m.lost, 0);
  EXPECT_EQ(m.completed, 20);
}

// ------------------------------------------------------ Backoff escalation

TEST(BackoffTest, SustainedAllDeclineRoundsEscalateRetrySpacing) {
  // One query no node can evaluate: every attempt is declined, so the
  // mediator's decline streak builds and the retry spacing escalates up to
  // max_backoff_periods whole periods.
  auto run_with_backoff = [](int max_backoff_periods) {
    auto model = std::make_unique<query::MatrixCostModel>(1, 1);
    allocation::AllocatorParams params;
    params.cost_model = model.get();
    auto alloc = allocation::CreateAllocator("Random", params);
    FederationConfig config;
    config.max_retries = 12;
    config.max_backoff_periods = max_backoff_periods;
    Federation fed(model.get(), alloc.get(), config);
    workload::Trace trace;
    workload::Arrival a;
    trace.Add(a);
    return fed.Run(trace);
  };
  // max_backoff_periods=1 caps escalation at the legacy one-period wait.
  SimMetrics legacy = run_with_backoff(1);
  SimMetrics escalated = run_with_backoff(4);
  EXPECT_EQ(legacy.dropped, 1);
  EXPECT_EQ(escalated.dropped, 1);
  EXPECT_EQ(legacy.retries, escalated.retries);  // same retry budget spent
  // Escalated spacing stretches the same retries over more virtual time.
  EXPECT_GT(escalated.end_time, legacy.end_time);
}

// ------------------------------------------------------------- Chaos soak

faults::FaultPlan RandomChaosPlan(uint64_t seed, int num_nodes,
                                  util::VTime horizon) {
  util::Rng rng(seed);
  faults::FaultPlan plan;
  plan.seed = seed;
  auto node = [&]() {
    return static_cast<catalog::NodeId>(
        rng.UniformInt(0, num_nodes - 1));
  };
  auto window = [&](util::VTime* from, util::VTime* until) {
    *from = static_cast<util::VTime>(
        rng.UniformInt(0, static_cast<int>(horizon / (2 * kSecond)))) *
        kSecond;
    *until = *from + kSecond +
             static_cast<util::VTime>(rng.UniformInt(0, 3)) * kSecond;
  };
  faults::CrashFault crash;
  crash.node = node();
  window(&crash.at, &crash.restart_at);
  plan.crashes.push_back(crash);

  faults::DegradeFault degrade;
  degrade.node = node();
  window(&degrade.from, &degrade.until);
  degrade.factor = 0.25 + 0.5 * rng.UniformReal(0.0, 1.0);
  plan.degrades.push_back(degrade);

  faults::LinkFault link;
  link.node = faults::LinkFault::kAllNodes;
  window(&link.from, &link.until);
  link.drop_probability = 0.1 + 0.2 * rng.UniformReal(0.0, 1.0);
  link.extra_latency = 2 * kMillisecond;
  plan.links.push_back(link);

  faults::PartitionFault partition;
  partition.nodes = {node()};
  window(&partition.from, &partition.until);
  plan.partitions.push_back(partition);
  return plan;
}

// --------------------------------------------------------- Query deadline

TEST(DeadlineTest, LateResultsExpireButConservationHolds) {
  auto model = BuildFig1CostModel();
  allocation::AllocatorParams params;
  params.cost_model = model.get();
  auto alloc = allocation::CreateAllocator("Greedy", params);
  FederationConfig config;
  config.query_deadline = 1 * kSecond;
  Federation fed(model.get(), alloc.get(), config);
  // Burst of 20 q2 at t=0: Greedy queues most of them on node 0 (100 ms
  // each vs 500 ms on node 1), so the tail of the queue completes well
  // past 1 s of sojourn and is discarded unread by the client.
  SimMetrics m = fed.Run(MakeTrace(20, 0, 1));
  EXPECT_EQ(m.completed + m.dropped, 20);
  EXPECT_GT(m.expired, 0);
  // No retry-budget drops here: every drop is a deadline expiry.
  EXPECT_EQ(m.expired, m.dropped);
  // Every *recorded* response met the SLA (a result landing exactly at
  // the deadline still counts).
  EXPECT_LE(m.response_time_ms.max(), 1000.0);
  EXPECT_EQ(static_cast<int64_t>(m.response_time_ms.count()), m.completed);

  // The same burst without a deadline completes in full.
  auto alloc0 = allocation::CreateAllocator("Greedy", params);
  Federation fed0(model.get(), alloc0.get(), FederationConfig{});
  SimMetrics m0 = fed0.Run(MakeTrace(20, 0, 1));
  EXPECT_EQ(m0.completed, 20);
  EXPECT_EQ(m0.expired, 0);
  EXPECT_EQ(m0.dropped, 0);
}

TEST(DeadlineTest, RetryingClientGivesUpAtTheDeadline) {
  auto model = BuildFig1CostModel();
  allocation::AllocatorParams params;
  params.cost_model = model.get();
  auto alloc = allocation::CreateAllocator("Greedy", params);
  FederationConfig config;
  config.query_deadline = 2 * kSecond;
  // Every node is partitioned for longer than the deadline: the lone query
  // can never be placed and retries each market tick until its sojourn
  // reaches 2 s, at which point the client abandons it — long before the
  // 200-attempt retry budget would have.
  faults::PartitionFault cut;
  cut.nodes = {0, 1};
  cut.from = 0;
  cut.until = 10 * kSecond;
  config.faults.partitions.push_back(cut);
  Federation fed(model.get(), alloc.get(), config);
  SimMetrics m = fed.Run(MakeTrace(1, 0, 0));
  EXPECT_EQ(m.completed, 0);
  EXPECT_EQ(m.dropped, 1);
  EXPECT_EQ(m.expired, 1);
}

// ---------------------------------------------------------------- Overload

TEST(SurgeTest, IntegerMultiplierClonesArrivalsExactly) {
  auto model = BuildFig1CostModel();
  allocation::AllocatorParams params;
  params.cost_model = model.get();
  auto alloc = allocation::CreateAllocator("Greedy", params);
  FederationConfig config;
  // 10 arrivals at 0..900 ms, all inside the surge window: an integer 3x
  // multiplier needs no Bernoulli draw, so the count is exact.
  faults::SurgeFault surge;
  surge.from = 0;
  surge.until = kSecond;
  surge.multiplier = 3.0;
  config.faults.surges.push_back(surge);
  Federation fed(model.get(), alloc.get(), config);
  SimMetrics m = fed.Run(MakeTrace(10, 100 * kMillisecond, 0));
  EXPECT_EQ(m.arrivals, 30);
  EXPECT_EQ(m.completed + m.dropped, m.arrivals);
}

TEST(SurgeTest, PerClassWindowOnlySurgesThatClass) {
  auto model = BuildFig1CostModel();
  allocation::AllocatorParams params;
  params.cost_model = model.get();
  auto alloc = allocation::CreateAllocator("Greedy", params);
  FederationConfig config;
  faults::SurgeFault surge;
  surge.class_id = 1;  // q2 doubles; the q1 stream is untouched
  surge.from = 0;
  surge.until = kSecond;
  surge.multiplier = 2.0;
  config.faults.surges.push_back(surge);
  Federation fed(model.get(), alloc.get(), config);
  workload::Trace trace = workload::Trace::Merge(
      MakeTrace(5, 100 * kMillisecond, 0), MakeTrace(5, 100 * kMillisecond, 1));
  SimMetrics m = fed.Run(trace);
  EXPECT_EQ(m.arrivals, 5 + 10);
}

TEST(SurgeTest, FractionalMultiplierIsSeededAndReproducible) {
  auto run_once = [](uint64_t fault_seed) {
    auto model = BuildFig1CostModel();
    allocation::AllocatorParams params;
    params.cost_model = model.get();
    auto alloc = allocation::CreateAllocator("Greedy", params);
    FederationConfig config;
    config.faults.seed = fault_seed;
    faults::SurgeFault surge;
    surge.from = 0;
    surge.until = 10 * kSecond;
    surge.multiplier = 2.5;
    config.faults.surges.push_back(surge);
    Federation fed(model.get(), alloc.get(), config);
    return fed.Run(MakeTrace(40, 100 * kMillisecond, 0));
  };
  SimMetrics a = run_once(11);
  SimMetrics b = run_once(11);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.completed, b.completed);
  // The fractional part is a per-arrival Bernoulli: the total sits
  // strictly between the 2x floor and the 3x ceiling with overwhelming
  // probability at 40 draws, and exactly within it always.
  EXPECT_GE(a.arrivals, 80);
  EXPECT_LE(a.arrivals, 120);
}

TEST(ShedTest, BoundedNodeQueueShedsAndConserves) {
  auto model = BuildFig1CostModel();
  allocation::AllocatorParams params;
  params.cost_model = model.get();
  auto alloc = allocation::CreateAllocator("Greedy", params);
  std::ostringstream sink;
  obs::Recorder recorder(&sink);
  FederationConfig config;
  config.recorder = &recorder;
  config.max_node_queue = 2;
  Federation fed(model.get(), alloc.get(), config);
  // Burst of 20 q2 at t=0: Greedy piles them onto node 0, whose waiting
  // queue holds only 2 — the overflow is shed on delivery.
  SimMetrics m = fed.Run(MakeTrace(20, 0, 1));
  EXPECT_GT(m.shed, 0);
  EXPECT_LE(m.shed, m.dropped);
  EXPECT_EQ(m.completed + m.dropped, m.arrivals);
  EXPECT_EQ(m.admission_rejects, 0);  // no admission gate in this run

  std::istringstream in(sink.str());
  util::StatusOr<obs::ParsedTrace> parsed = obs::ParsedTrace::Parse(in);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  int64_t shed_records = 0;
  for (const obs::EventRecord& e : parsed->events) {
    if (e.kind != obs::EventRecord::Kind::kShed) continue;
    ++shed_records;
    EXPECT_GE(e.node, 0);  // queue sheds name the overflowing node
    EXPECT_GE(e.query, 0);
  }
  EXPECT_EQ(shed_records, m.shed);
}

TEST(ShedTest, LowestPriorityPolicyProtectsCheapClasses) {
  // Same bound, opposite victim selection: under kLowestPriorityFirst an
  // expensive queued q1 yields its slot to nothing (q1 is the costliest),
  // but an incoming cheap q2 evicts a queued q1 rather than being shed
  // itself. Run a mixed burst and compare per-class drop shares.
  auto run_with = [](ShedPolicy policy) {
    auto model = BuildFig1CostModel();
    allocation::AllocatorParams params;
    params.cost_model = model.get();
    auto alloc = allocation::CreateAllocator("Greedy", params);
    FederationConfig config;
    config.max_node_queue = 2;
    config.shed_policy = policy;
    Federation fed(model.get(), alloc.get(), config);
    workload::Trace trace =
        workload::Trace::Merge(MakeTrace(10, 0, 0), MakeTrace(10, 0, 1));
    return fed.Run(trace);
  };
  SimMetrics newest = run_with(ShedPolicy::kNewestFirst);
  SimMetrics priority = run_with(ShedPolicy::kLowestPriorityFirst);
  EXPECT_EQ(newest.completed + newest.dropped, newest.arrivals);
  EXPECT_EQ(priority.completed + priority.dropped, priority.arrivals);
  ASSERT_GT(priority.shed, 0);
  ASSERT_EQ(priority.dropped_per_class.size(), 2u);
  // The expensive class (q1 costs more everywhere in the Fig. 1 model)
  // absorbs at least as much of the shedding as it did newest-first.
  EXPECT_GE(priority.dropped_per_class[0], newest.dropped_per_class[0]);
}

TEST(ShedTest, RetryBacklogBoundShedsOverflow) {
  auto model = BuildFig1CostModel();
  allocation::AllocatorParams params;
  params.cost_model = model.get();
  auto alloc = allocation::CreateAllocator("Greedy", params);
  FederationConfig config;
  config.max_retries = 10;
  config.max_retry_backlog = 4;
  // Every node partitioned: all 12 queries can only retry. The backlog
  // holds 4; the rest are shed instead of joining the retry set.
  faults::PartitionFault cut;
  cut.nodes = {0, 1};
  cut.from = 0;
  cut.until = 60 * kSecond;
  config.faults.partitions.push_back(cut);
  Federation fed(model.get(), alloc.get(), config);
  SimMetrics m = fed.Run(MakeTrace(12, 0, 0));
  EXPECT_EQ(m.completed, 0);
  EXPECT_EQ(m.dropped, 12);
  EXPECT_GE(m.shed, 8);  // at most 4 ever sit in backed-off state
  EXPECT_LE(m.shed, m.dropped);
}

TEST(AdmissionTest, StaticThresholdGatesArrivals) {
  auto model = BuildFig1CostModel();
  allocation::AllocatorParams params;
  params.cost_model = model.get();
  auto alloc = allocation::CreateAllocator("Greedy", params);
  FederationConfig config;
  config.admission.policy = AdmissionPolicy::kStatic;
  config.admission.max_outstanding = 3;
  Federation fed(model.get(), alloc.get(), config);
  // Burst of 20: only the first few are in flight below the threshold;
  // the rest are turned away at the gate.
  SimMetrics m = fed.Run(MakeTrace(20, 0, 1));
  EXPECT_GT(m.admission_rejects, 0);
  EXPECT_LE(m.admission_rejects, m.shed);
  EXPECT_LE(m.shed, m.dropped);
  EXPECT_EQ(m.completed + m.dropped, m.arrivals);
}

TEST(AdmissionTest, DeferredAdmissionRetriesInsteadOfShedding) {
  auto run_with = [](bool defer) {
    auto model = BuildFig1CostModel();
    allocation::AllocatorParams params;
    params.cost_model = model.get();
    auto alloc = allocation::CreateAllocator("Greedy", params);
    FederationConfig config;
    config.admission.policy = AdmissionPolicy::kStatic;
    config.admission.max_outstanding = 3;
    config.admission.defer = defer;
    Federation fed(model.get(), alloc.get(), config);
    return fed.Run(MakeTrace(20, 0, 1));
  };
  SimMetrics shed_mode = run_with(false);
  SimMetrics defer_mode = run_with(true);
  // Deferral trades immediate sheds for retries: gated queries come back
  // at the next market tick and complete once the backlog drains.
  EXPECT_GT(defer_mode.retries, shed_mode.retries);
  EXPECT_GT(defer_mode.completed, shed_mode.completed);
  EXPECT_EQ(defer_mode.completed + defer_mode.dropped, defer_mode.arrivals);
}

TEST(AdmissionTest, PriceSignalHysteresisBrownsOutExpensiveClassFirst) {
  AdmissionConfig config;
  config.policy = AdmissionPolicy::kPriceSignal;
  config.enter_ratio = 3.0;
  config.exit_ratio = 1.5;
  config.warmup_periods = 2;
  // Class 0 is the expensive one: it browns out first.
  AdmissionController admission(config, {2.0, 1.0});

  obs::metrics::MarketProbe probe;
  probe.num_classes = 2;
  auto feed = [&](double price) {
    probe.prices.assign(4, price);  // 2 agents x 2 classes
    probe.earnings.assign(2, 0.0);
    admission.OnPeriod(probe);
  };

  // Warmup establishes the ln-price baseline; nothing is gated.
  feed(1.0);
  feed(1.0);
  EXPECT_EQ(admission.brownout_level(), 0);
  EXPECT_EQ(admission.Admit(0, 0), AdmissionController::Decision::kAdmit);

  // Prices spike to 8x the baseline: ratio >= enter_ratio, the brownout
  // level climbs one class per period, expensive first.
  feed(8.0);
  EXPECT_EQ(admission.brownout_level(), 1);
  EXPECT_EQ(admission.Admit(0, 0), AdmissionController::Decision::kShed);
  EXPECT_EQ(admission.Admit(1, 0), AdmissionController::Decision::kAdmit);
  feed(8.0);
  EXPECT_EQ(admission.brownout_level(), 2);
  EXPECT_EQ(admission.Admit(1, 0), AdmissionController::Decision::kShed);

  // A falling index steps the level down even while the ratio is still
  // far above the band: no one is being declined any more, the market is
  // clearing, and waiting for the slow price decay to cross exit_ratio
  // would lock the brownout in for the rest of the run.
  feed(7.0);
  EXPECT_EQ(admission.brownout_level(), 1);
  EXPECT_EQ(admission.Admit(1, 0), AdmissionController::Decision::kAdmit);
  EXPECT_EQ(admission.Admit(0, 0), AdmissionController::Decision::kShed);
  feed(2.0);
  EXPECT_EQ(admission.brownout_level(), 0);

  // Scarcity building again (rising index above the band) re-engages the
  // gate one class per period.
  feed(6.0);
  EXPECT_EQ(admission.brownout_level(), 1);
  feed(6.0);  // flat at 6x: still above the band, not cooling
  EXPECT_EQ(admission.brownout_level(), 2);

  // Inside the hysteresis band with flat prices the level holds; the
  // first (falling) period steps down, the second (flat) does not.
  feed(2.0);
  EXPECT_EQ(admission.brownout_level(), 1);
  feed(2.0);
  EXPECT_EQ(admission.brownout_level(), 1);

  // Ratio <= exit_ratio completes the recovery, cheapest class restored
  // first (it was never gated at level 1).
  feed(1.0);
  EXPECT_EQ(admission.brownout_level(), 0);
  EXPECT_EQ(admission.Admit(0, 0), AdmissionController::Decision::kAdmit);
}

TEST(AdmissionTest, TrackingBaselineFollowsDriftButNotSurges) {
  AdmissionConfig config;
  config.policy = AdmissionPolicy::kPriceSignal;
  config.enter_ratio = 3.0;
  config.exit_ratio = 1.5;
  config.warmup_periods = 2;
  config.baseline_alpha = 0.5;
  AdmissionController admission(config, {2.0, 1.0});

  obs::metrics::MarketProbe probe;
  probe.num_classes = 2;
  auto feed = [&](double price) {
    probe.prices.assign(4, price);  // 2 agents x 2 classes
    probe.earnings.assign(2, 0.0);
    admission.OnPeriod(probe);
  };

  // In tracking mode the baseline starts where the index stands when
  // warmup ends — the first gated ratio is 1 by construction, however
  // steep the discovery ramp was.
  feed(1.0);
  feed(2.0);
  EXPECT_EQ(admission.brownout_level(), 0);

  // Sustained drift (~+10%/period) stays inside the band: the EMA chases
  // the index, so the ratio settles near the per-period growth, not the
  // cumulative one. Uniform prices make the ratio an exact price ratio.
  feed(2.2);
  EXPECT_NEAR(admission.price_ratio(), 1.1000, 1e-3);
  feed(2.4);
  EXPECT_NEAR(admission.price_ratio(), 1.1442, 1e-3);
  feed(2.6);
  EXPECT_NEAR(admission.price_ratio(), 1.1588, 1e-3);
  EXPECT_EQ(admission.brownout_level(), 0);

  // A 10x jump outruns any tracking rate: the ratio explodes and the
  // brownout engages expensive-class first.
  feed(26.0);
  EXPECT_NEAR(admission.price_ratio(), 10.7646, 1e-3);
  EXPECT_EQ(admission.brownout_level(), 1);
  EXPECT_EQ(admission.Admit(0, 0), AdmissionController::Decision::kShed);

  // The unchanged ratio one period later proves the baseline refused to
  // learn from an overloaded period — a sustained crowd cannot redefine
  // "normal" and ride the EMA back under the band.
  feed(26.0);
  EXPECT_NEAR(admission.price_ratio(), 10.7646, 1e-3);
  EXPECT_EQ(admission.brownout_level(), 2);

  // Back at the drifted level the ratio is ~1 again (the baseline kept
  // the pre-surge normal) and the gate reopens.
  feed(2.6);
  EXPECT_NEAR(admission.price_ratio(), 1.0765, 1e-3);
  EXPECT_EQ(admission.brownout_level(), 1);
  feed(2.6);
  EXPECT_EQ(admission.brownout_level(), 0);
  EXPECT_EQ(admission.Admit(0, 0), AdmissionController::Decision::kAdmit);
}

// Satellite 2: randomized-but-seeded plans across every mechanism, with
// conservation and thread-count invariance (same submission-order results
// at --threads 1 and 4).
TEST(ChaosSoakTest, ConservationAndThreadInvariance) {
  TwoClassConfig scenario_config;
  scenario_config.num_nodes = 8;
  util::Rng scenario_rng(42);
  auto model = BuildTwoClassCostModel(scenario_config, scenario_rng);

  workload::Trace trace;
  util::Rng arrivals_rng(7);
  for (int i = 0; i < 120; ++i) {
    workload::Arrival a;
    a.time = i * 150 * kMillisecond;
    a.class_id = static_cast<int>(arrivals_rng.UniformInt(0, 1));
    a.origin = 0;
    a.cost_jitter = 1.0;
    trace.Add(a);
  }

  std::vector<exec::RunSpec> specs;
  for (const std::string& mechanism : allocation::AllMechanismNames()) {
    for (uint64_t seed : {1u, 2u}) {
      exec::RunSpec spec;
      spec.cost_model = model.get();
      spec.mechanism = mechanism;
      spec.trace = &trace;
      spec.seed = seed;
      spec.config.max_retries = 500;
      spec.config.faults =
          RandomChaosPlan(seed, scenario_config.num_nodes, 18 * kSecond);
      specs.push_back(std::move(spec));
    }
  }

  std::vector<exec::RunResult> serial = exec::ExperimentRunner(1).Run(specs);
  std::vector<exec::RunResult> parallel =
      exec::ExperimentRunner(4).Run(specs);
  ASSERT_EQ(serial.size(), specs.size());
  ASSERT_EQ(parallel.size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    const SimMetrics& s = serial[i].metrics;
    const SimMetrics& p = parallel[i].metrics;
    // Conservation under every fault mechanism at once.
    EXPECT_EQ(s.completed + s.dropped, 120) << specs[i].mechanism;
    // Thread-count invariance, field by field.
    EXPECT_EQ(s.completed, p.completed) << specs[i].mechanism;
    EXPECT_EQ(s.dropped, p.dropped) << specs[i].mechanism;
    EXPECT_EQ(s.lost, p.lost) << specs[i].mechanism;
    EXPECT_EQ(s.bounced, p.bounced) << specs[i].mechanism;
    EXPECT_EQ(s.retries, p.retries) << specs[i].mechanism;
    EXPECT_EQ(s.messages, p.messages) << specs[i].mechanism;
    EXPECT_EQ(s.end_time, p.end_time) << specs[i].mechanism;
    EXPECT_DOUBLE_EQ(s.MeanResponseMs(), p.MeanResponseMs())
        << specs[i].mechanism;
  }
}

// Same seed + same plan => byte-identical traces.
TEST(ChaosSoakTest, SeededChaosTraceIsByteIdentical) {
  auto run_traced = []() {
    auto model = BuildFig1CostModel();
    allocation::AllocatorParams params;
    params.cost_model = model.get();
    params.period = 500 * kMillisecond;
    auto alloc = allocation::CreateAllocator("QA-NT", params);
    std::ostringstream sink;
    {
      obs::Recorder recorder(&sink);
      FederationConfig config;
      config.period = 500 * kMillisecond;
      config.recorder = &recorder;
      config.faults =
          RandomChaosPlan(/*seed=*/99, /*num_nodes=*/2, 10 * kSecond);
      Federation fed(model.get(), alloc.get(), config);
      workload::Trace trace;
      for (int i = 0; i < 30; ++i) {
        workload::Arrival a;
        a.time = i * 300 * kMillisecond;
        a.class_id = i % 2;
        a.origin = 0;
        a.cost_jitter = 1.0;
        trace.Add(a);
      }
      fed.Run(trace);
      recorder.Finish();
    }
    return sink.str();
  };
  std::string first = run_traced();
  std::string second = run_traced();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace qa::sim
