// Federation-level property fuzzing: ~30 seeded random scenarios (node
// counts, mechanisms, workloads, fault plans, solicitation policies) each
// run end to end, asserting the invariants that must hold for *any*
// configuration:
//   - conservation: arrivals == completed + dropped (nothing in flight
//     after Run drains; lost/bounced queries are resubmitted, not leaked)
//   - expired is a subset of dropped; shed is a subset of dropped and
//     admission rejects a subset of shed (overload protection never
//     leaks a query, it accounts it)
//   - every counter non-negative and internally consistent
//   - snapshot/price sanity every period (prices positive, supply within
//     plan, agent counters ordered)
// The market layer has property tests (tests/property_test.cc); this is
// the same discipline one level up, over the whole simulator.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "allocation/factory.h"
#include "allocation/solicitation.h"
#include "exec/experiment_runner.h"
#include "exec/thread_pool.h"
#include "obs/metrics/collector.h"
#include "obs/recorder.h"
#include "obs/trace_reader.h"
#include "sim/metrics_json.h"
#include "sim/scenario.h"
#include "util/rng.h"
#include "workload/sinusoid.h"

namespace qa::sim {
namespace {

using util::kMillisecond;
using util::kSecond;

struct FuzzCase {
  int num_nodes = 0;
  std::string mechanism;
  allocation::SolicitationConfig solicitation;
  workload::SinusoidConfig workload;
  FederationConfig config;
  uint64_t seed = 0;
};

/// Derives one full random scenario from the case index. Everything comes
/// from the seeded Rng, so failures replay exactly from the case number.
FuzzCase MakeCase(int index) {
  util::Rng rng(0x5eedf00d + static_cast<uint64_t>(index) * 7919);
  FuzzCase c;
  c.seed = static_cast<uint64_t>(rng.UniformInt(1, 1 << 20));
  c.num_nodes = static_cast<int>(rng.UniformInt(2, 25));

  // Mechanisms beyond the Fig. 4 grid (GreedyBlind, LeastImbalance) ride
  // along so the blind and centralized paths get fuzzed too.
  std::vector<std::string> mechanisms = allocation::AllMechanismNames();
  mechanisms.push_back("GreedyBlind");
  mechanisms.push_back("LeastImbalance");
  c.mechanism = mechanisms[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(mechanisms.size()) - 1))];

  // A third of the QA-NT cases use a sampled solicitation policy, with a
  // fanout that sometimes exceeds the node count (clamp path).
  if (c.mechanism == "QA-NT") {
    int64_t policy = rng.UniformInt(0, 2);
    if (policy == 1) {
      c.solicitation.policy = allocation::SolicitationPolicy::kUniformSample;
    } else if (policy == 2) {
      c.solicitation.policy =
          allocation::SolicitationPolicy::kStratifiedSample;
    }
    if (c.solicitation.sampled()) {
      c.solicitation.fanout = static_cast<int>(rng.UniformInt(1, 32));
    }
  }

  c.workload.frequency_hz = rng.UniformReal(0.05, 0.5);
  c.workload.duration = rng.UniformInt(4, 10) * kSecond;
  c.workload.num_origin_nodes = c.num_nodes;
  c.workload.q1_peak_rate = rng.UniformReal(2.0, 8.0) *
                            static_cast<double>(c.num_nodes) / 4.0;

  c.config.period = rng.UniformInt(200, 800) * kMillisecond;
  c.config.max_retries = static_cast<int>(rng.UniformInt(20, 200));
  c.config.seed = static_cast<int64_t>(c.seed);
  c.config.solicitation = c.solicitation;
  if (rng.Bernoulli(0.3)) {
    c.config.query_deadline = rng.UniformInt(2, 10) * kSecond;
  }

  // Half the cases carry a fault plan: a crash, a partition, a degrade —
  // windows kept inside the workload so transitions actually fire.
  if (rng.Bernoulli(0.5)) {
    util::VTime horizon = c.workload.duration;
    faults::CrashFault crash;
    crash.node = static_cast<catalog::NodeId>(
        rng.UniformInt(0, c.num_nodes - 1));
    crash.at = rng.UniformInt(1, horizon / (2 * kSecond)) * kSecond;
    crash.restart_at = crash.at + rng.UniformInt(1, 3) * kSecond;
    c.config.faults.crashes.push_back(crash);
    if (rng.Bernoulli(0.5)) {
      faults::PartitionFault partition;
      partition.nodes = {static_cast<catalog::NodeId>(
          rng.UniformInt(0, c.num_nodes - 1))};
      partition.from = rng.UniformInt(1, horizon / (2 * kSecond)) * kSecond;
      partition.until = partition.from + rng.UniformInt(1, 3) * kSecond;
      c.config.faults.partitions.push_back(partition);
    }
    if (rng.Bernoulli(0.5)) {
      faults::DegradeFault degrade;
      degrade.node = static_cast<catalog::NodeId>(
          rng.UniformInt(0, c.num_nodes - 1));
      degrade.from = rng.UniformInt(1, horizon / (2 * kSecond)) * kSecond;
      degrade.until = degrade.from + rng.UniformInt(1, 3) * kSecond;
      degrade.factor = rng.UniformReal(0.3, 0.9);
      c.config.faults.degrades.push_back(degrade);
    }
  }

  // Overload dimensions ride along after the original draws so the first
  // part of every case derivation (and the paths it covers) is unchanged.
  // Surges: a flash crowd (or a lull — multipliers below 1 thin the
  // trace), global or confined to one of the two classes.
  if (rng.Bernoulli(0.4)) {
    faults::SurgeFault surge;
    surge.class_id = static_cast<int>(rng.UniformInt(-1, 1));
    surge.from = rng.UniformInt(0, c.workload.duration / (2 * kSecond)) *
                 kSecond;
    surge.until = surge.from + rng.UniformInt(1, 3) * kSecond;
    surge.multiplier = rng.UniformReal(0.5, 4.0);
    c.config.faults.surges.push_back(surge);
  }
  // Bounded queues + retry backlog with a random shed policy.
  if (rng.Bernoulli(0.4)) {
    c.config.max_node_queue = static_cast<int>(rng.UniformInt(2, 30));
    c.config.max_retry_backlog = static_cast<int>(rng.UniformInt(10, 300));
    c.config.shed_policy = rng.Bernoulli(0.5)
                               ? ShedPolicy::kNewestFirst
                               : ShedPolicy::kLowestPriorityFirst;
  }
  // Admission control: static threshold or price-signal, reject or defer.
  if (rng.Bernoulli(0.4)) {
    c.config.admission.policy = rng.Bernoulli(0.5)
                                    ? AdmissionPolicy::kStatic
                                    : AdmissionPolicy::kPriceSignal;
    c.config.admission.max_outstanding =
        rng.UniformInt(5, 50) * static_cast<int64_t>(c.num_nodes);
    c.config.admission.defer = rng.Bernoulli(0.5);
    // Half the price-signal draws exercise the slow-tracking baseline.
    if (rng.Bernoulli(0.5)) c.config.admission.baseline_alpha = 0.05;
  }
  // Hierarchical two-tier topologies ride along after every earlier draw
  // so the existing corpus replays byte-identically. Only QA-NT consumes
  // the plan; membership is drawn per node, so cluster sizes skew
  // naturally and small plans can come out with an empty cluster (legal —
  // the cluster simply never wins the top-tier auction).
  if (c.mechanism == "QA-NT" && rng.Bernoulli(0.5)) {
    int num_clusters =
        static_cast<int>(rng.UniformInt(1, std::min(c.num_nodes, 6)));
    c.config.cluster_plan.enabled = true;
    c.config.cluster_plan.clusters.assign(
        static_cast<size_t>(num_clusters), {});
    for (int node = 0; node < c.num_nodes; ++node) {
      int64_t cl = rng.UniformInt(0, num_clusters - 1);
      c.config.cluster_plan.clusters[static_cast<size_t>(cl)].push_back(
          static_cast<catalog::NodeId>(node));
    }
    if (rng.Bernoulli(0.5)) {
      c.config.cluster_plan.top.policy =
          allocation::SolicitationPolicy::kUniformSample;
      c.config.cluster_plan.top.fanout =
          static_cast<int>(rng.UniformInt(1, 8));
    }
  }
  return c;
}

void CheckInvariants(const FuzzCase& c, const workload::Trace& trace,
                     const SimMetrics& m, const obs::ParsedTrace& parsed) {
  // The simulator's own arrival counter, not the input trace length:
  // surge windows clone (or thin) scheduled arrivals, so the trace size
  // only bounds the count when no surge is configured.
  int64_t arrivals = m.arrivals;
  if (c.config.faults.surges.empty()) {
    EXPECT_EQ(arrivals, static_cast<int64_t>(trace.size()));
  }

  // Conservation: Run drains the event loop, so nothing is in flight and
  // every arrival either completed or was dropped. Lost/bounced queries
  // were resubmitted, never leaked — and shed queries were accounted as
  // drops, never leaked either.
  EXPECT_EQ(arrivals, m.completed + m.dropped);

  // Expired queries are a subset of the dropped ones; so are shed
  // queries, and admission rejects are a subset of the sheds.
  EXPECT_LE(m.expired, m.dropped);
  EXPECT_GE(m.expired, 0);
  EXPECT_LE(m.shed, m.dropped);
  EXPECT_GE(m.shed, 0);
  EXPECT_LE(m.admission_rejects, m.shed);
  EXPECT_GE(m.admission_rejects, 0);
  if (c.config.admission.policy == AdmissionPolicy::kOff) {
    EXPECT_EQ(m.admission_rejects, 0);
  }

  // Non-negative, internally consistent counters.
  EXPECT_GE(m.completed, 0);
  EXPECT_GE(m.dropped, 0);
  EXPECT_GE(m.retries, 0);
  EXPECT_GE(m.bounced, 0);
  EXPECT_GE(m.lost, 0);
  EXPECT_GE(m.messages, 0);
  EXPECT_GE(m.solicited, 0);
  EXPECT_GE(m.assigned, m.completed);  // every completion was assigned
  EXPECT_GE(m.end_time, 0);
  EXPECT_GE(m.total_busy_time, 0);
  EXPECT_GT(m.events_dispatched, 0);
  EXPECT_EQ(m.response_time_ms.count(), m.completed);

  // Per-node completions cover every federation-level completion, plus at
  // most the expired queries: a result that lands past the deadline still
  // ran on the node (counted there) but is dropped as expired up here.
  int64_t node_sum = 0;
  for (int64_t n : m.node_completed) {
    EXPECT_GE(n, 0);
    node_sum += n;
  }
  EXPECT_GE(node_sum, m.completed);
  EXPECT_LE(node_sum, m.completed + m.expired);

  int64_t per_class_drops = 0;
  for (int64_t d : m.dropped_per_class) {
    EXPECT_GE(d, 0);
    per_class_drops += d;
  }
  EXPECT_EQ(per_class_drops, m.dropped);

  // Trace-side conservation: one arrival record per query, completions
  // match, timestamps never run backwards.
  int64_t rec_arrivals = 0, rec_completes = 0, rec_drops = 0;
  int64_t rec_sheds = 0, rec_surges = 0;
  int64_t last_t = 0;
  for (const obs::EventRecord& event : parsed.events) {
    EXPECT_GE(event.t_us, last_t) << "event time ran backwards";
    last_t = event.t_us;
    EXPECT_GE(event.solicited, 0);
    switch (event.kind) {
      case obs::EventRecord::Kind::kArrival:
        ++rec_arrivals;
        break;
      case obs::EventRecord::Kind::kComplete:
        ++rec_completes;
        break;
      case obs::EventRecord::Kind::kDrop:
        ++rec_drops;
        break;
      case obs::EventRecord::Kind::kShed:
        ++rec_sheds;
        break;
      case obs::EventRecord::Kind::kSurge:
        ++rec_surges;
        EXPECT_GT(event.factor, 0.0);
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(rec_arrivals, arrivals);
  EXPECT_EQ(rec_completes, m.completed);
  // Shed queries log a `shed` record instead of a `drop` record; together
  // the two cover every dropped query.
  EXPECT_EQ(rec_sheds, m.shed);
  EXPECT_EQ(rec_drops + rec_sheds, m.dropped);
  // One start + one end marker per configured surge window.
  EXPECT_EQ(rec_surges,
            2 * static_cast<int64_t>(c.config.faults.surges.size()));

  // Snapshot sanity, every period: prices positive, unsold supply within
  // the period plan, agent counters ordered (requests >= offers >=
  // accepted).
  for (const obs::PriceRecord& price : parsed.prices) {
    EXPECT_GT(price.price, 0.0) << "node " << price.node << " class "
                                << price.class_id << " at t=" << price.t_us;
    EXPECT_GE(price.planned, 0);
    EXPECT_GE(price.remaining, 0);
    EXPECT_LE(price.remaining, price.planned);
    EXPECT_GE(price.node, 0);
    EXPECT_LT(price.node, c.num_nodes);
  }
  // Note: budget_us may legitimately be negative — over-acceptance within
  // a period is carried into the next one as debt (budget-elastic
  // admission), so no lower bound is asserted on it.
  for (const obs::AgentRecord& agent : parsed.agents) {
    EXPECT_GE(agent.requests, agent.offers);
    EXPECT_GE(agent.offers, agent.accepted);
    EXPECT_GE(agent.declined, 0);
    EXPECT_GE(agent.periods, 0);
  }

  // Hierarchical-market invariants: cluster solicitations only happen
  // under a multi-cluster plan, and every cluster ledger snapshot stays
  // within its published aggregate.
  EXPECT_GE(m.clusters_solicited, 0);
  if (!c.config.cluster_plan.hierarchical()) {
    EXPECT_EQ(m.clusters_solicited, 0);
    EXPECT_TRUE(parsed.clusters.empty());
  }
  int num_clusters = c.config.cluster_plan.num_clusters();
  for (const obs::ClusterRecord& rec : parsed.clusters) {
    EXPECT_GE(rec.cluster, 0);
    EXPECT_LT(rec.cluster, num_clusters);
    EXPECT_GE(rec.published, 0);
    EXPECT_GE(rec.remaining, 0);
    EXPECT_LE(rec.remaining, rec.published);
    EXPECT_GE(rec.sold, 0);
  }
  for (const obs::EventRecord& event : parsed.events) {
    EXPECT_GE(event.clusters_asked, 0);
    EXPECT_GE(event.cluster, -1);
    EXPECT_LT(event.cluster, num_clusters);
    if (!c.config.cluster_plan.hierarchical()) {
      EXPECT_EQ(event.cluster, -1);
      EXPECT_EQ(event.clusters_asked, 0);
    }
  }
}

TEST(FederationPropertyTest, InvariantsHoldOnRandomScenarios) {
  constexpr int kCases = 48;
  for (int i = 0; i < kCases; ++i) {
    SCOPED_TRACE("fuzz case " + std::to_string(i));
    FuzzCase c = MakeCase(i);
    SCOPED_TRACE("mechanism " + c.mechanism + " nodes " +
                 std::to_string(c.num_nodes) + " solicitation " +
                 std::string(allocation::SolicitationPolicyName(
                     c.solicitation.policy)) +
                 "(" + std::to_string(c.solicitation.fanout) + ")");

    util::Rng rng(c.seed);
    TwoClassConfig scenario;
    scenario.num_nodes = c.num_nodes;
    auto model = BuildTwoClassCostModel(scenario, rng);
    util::Rng wl_rng(c.seed + 1);
    workload::Trace trace =
        workload::GenerateSinusoidWorkload(c.workload, wl_rng);

    std::string path = ::testing::TempDir() + "/federation_fuzz_" +
                       std::to_string(i) + ".jsonl";
    util::StatusOr<std::unique_ptr<obs::Recorder>> recorder =
        obs::Recorder::OpenFile(path);
    ASSERT_TRUE(recorder.ok()) << recorder.status();

    exec::RunSpec spec;
    spec.cost_model = model.get();
    spec.mechanism = c.mechanism;
    spec.trace = &trace;
    spec.period = c.config.period;
    spec.seed = c.seed;
    spec.config = c.config;
    spec.config.recorder = recorder.value().get();
    SimMetrics metrics = exec::RunSpecOnce(spec).metrics;
    recorder.value()->Finish();

    util::StatusOr<obs::ParsedTrace> parsed = obs::ParsedTrace::Load(path);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    CheckInvariants(c, trace, metrics, parsed.value());
  }
}

/// What one replay produces: everything that must be byte-identical
/// across shard/thread layouts.
struct ReplayResult {
  std::string metrics_json;  // final SimMetrics as JSON
  std::string trace_bytes;   // full JSONL trace
  /// The deterministic lines of the metrics stream (msample + alarm).
  /// mmeta carries the layout by design, and mstat/mshards carry
  /// wall-clock values, so those are compared by record count instead.
  std::string deterministic_metrics;
  size_t mstat_lines = 0;
};

/// Splits the collector's JSONL stream into the deterministic byte-compare
/// half and the record-count half.
void SplitMetricsStream(const std::string& stream, ReplayResult* out) {
  std::istringstream lines(stream);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("\"type\":\"msample\"") != std::string::npos ||
        line.find("\"type\":\"alarm\"") != std::string::npos) {
      out->deterministic_metrics += line;
      out->deterministic_metrics += '\n';
    } else if (line.find("\"type\":\"mstat\"") != std::string::npos) {
      ++out->mstat_lines;
    }
  }
}

/// Replays one fuzz case end to end under the given shard/thread layout
/// — trace recorder AND metrics collector attached, so the byte-identity
/// contract covers both observability streams. shards == 1 leaves
/// config.runner unset and takes the inline path.
ReplayResult ReplayCase(const FuzzCase& c, int index,
                        int shards, int threads,
                        const std::string& tag) {
  util::Rng rng(c.seed);
  TwoClassConfig scenario;
  scenario.num_nodes = c.num_nodes;
  auto model = BuildTwoClassCostModel(scenario, rng);
  util::Rng wl_rng(c.seed + 1);
  workload::Trace trace =
      workload::GenerateSinusoidWorkload(c.workload, wl_rng);

  std::string path = ::testing::TempDir() + "/federation_shard_" +
                     std::to_string(index) + "_" + tag + ".jsonl";
  ReplayResult result;
  std::ostringstream metrics_stream;
  {
    exec::ThreadPool pool(threads);
    exec::PoolRunner runner(&pool);
    util::StatusOr<std::unique_ptr<obs::Recorder>> recorder =
        obs::Recorder::OpenFile(path);
    EXPECT_TRUE(recorder.ok()) << recorder.status();
    obs::metrics::Collector collector(&metrics_stream);
    exec::RunSpec spec;
    spec.cost_model = model.get();
    spec.mechanism = c.mechanism;
    spec.trace = &trace;
    spec.period = c.config.period;
    spec.seed = c.seed;
    spec.config = c.config;
    spec.config.recorder = recorder.value().get();
    spec.config.metrics = &collector;
    spec.config.shards = shards;
    if (shards > 1) spec.config.runner = &runner;
    result.metrics_json =
        MetricsToJson(exec::RunSpecOnce(spec).metrics).Dump();
    recorder.value()->Finish();
    collector.Finish();
  }
  std::ifstream in(path, std::ios::binary);
  std::ostringstream bytes;
  bytes << in.rdbuf();
  result.trace_bytes = std::move(bytes).str();
  SplitMetricsStream(metrics_stream.str(), &result);
  return result;
}

// The sharded-core contract over the whole fuzz corpus: every scenario —
// every mechanism, fault plan, deadline, and solicitation policy the
// corpus generates — must come back byte-identical (metrics, trace bytes,
// AND the deterministic half of the metrics stream: every msample and
// alarm line) when the run is split over 4 shards on an 8-thread pool,
// and again on a 1-thread pool (same partition, different interleaving of
// the drains). The wall-clock mstat block only has to keep its record
// count (one line per catalog metric, every layout). This is the
// strongest statement the repo can make that the conservative-window
// merge reproduces the inline event order exactly — and that profiling
// rides along without perturbing it.
TEST(FederationPropertyTest, ShardedReplayIsByteIdenticalToInline) {
  constexpr int kCases = 48;
  for (int i = 0; i < kCases; ++i) {
    SCOPED_TRACE("fuzz case " + std::to_string(i));
    FuzzCase c = MakeCase(i);
    SCOPED_TRACE("mechanism " + c.mechanism + " nodes " +
                 std::to_string(c.num_nodes) + " faults " +
                 std::to_string(c.config.faults.crashes.size() +
                                c.config.faults.partitions.size() +
                                c.config.faults.degrades.size()));
    ReplayResult inline_run = ReplayCase(c, i, 1, 1, "inline");
    for (int threads : {1, 8}) {
      SCOPED_TRACE("shards 4 threads " + std::to_string(threads));
      ReplayResult sharded =
          ReplayCase(c, i, 4, threads, "s4t" + std::to_string(threads));
      EXPECT_EQ(inline_run.metrics_json, sharded.metrics_json);
      EXPECT_EQ(inline_run.trace_bytes, sharded.trace_bytes);
      EXPECT_EQ(inline_run.deterministic_metrics,
                sharded.deterministic_metrics);
      EXPECT_EQ(inline_run.mstat_lines, sharded.mstat_lines);
    }

    // Admission snapshot sanity: the brownout level every msample reports
    // must be a valid class count (0 = no brownout, at most the two
    // classes of the scenario), and identically zero when admission is
    // off.
    std::istringstream lines(inline_run.deterministic_metrics);
    std::string line;
    while (std::getline(lines, line)) {
      size_t pos = line.find("\"brownout\":");
      if (pos == std::string::npos) continue;
      int level = std::stoi(line.substr(pos + 11));
      EXPECT_GE(level, 0) << line;
      EXPECT_LE(level, 2) << line;
      if (c.config.admission.policy != AdmissionPolicy::kPriceSignal) {
        EXPECT_EQ(level, 0) << line;
      }
    }
  }
}

// The fuzz corpus must actually exercise the interesting paths; if a
// refactor of MakeCase silently stops generating sampled solicitation or
// fault plans, these canaries fail instead of the coverage quietly rotting.
TEST(FederationPropertyTest, CorpusCoversTheInterestingPaths) {
  int sampled = 0, faulted = 0, deadlined = 0, qa_nt = 0;
  int surged = 0, bounded = 0, admitted = 0, deferred = 0;
  int clustered = 0, degenerate = 0, empty_cluster = 0, skewed = 0;
  for (int i = 0; i < 48; ++i) {
    FuzzCase c = MakeCase(i);
    if (c.solicitation.sampled()) ++sampled;
    if (!c.config.faults.empty()) ++faulted;
    if (c.config.query_deadline > 0) ++deadlined;
    if (c.mechanism == "QA-NT") ++qa_nt;
    if (!c.config.faults.surges.empty()) ++surged;
    if (c.config.max_node_queue < (1 << 30)) ++bounded;
    if (c.config.admission.policy != AdmissionPolicy::kOff) ++admitted;
    if (c.config.admission.policy != AdmissionPolicy::kOff &&
        c.config.admission.defer) {
      ++deferred;
    }
    const allocation::ClusterPlan& plan = c.config.cluster_plan;
    if (plan.hierarchical()) ++clustered;
    if (plan.enabled && plan.num_clusters() == 1) ++degenerate;
    size_t min_size = SIZE_MAX, max_size = 0;
    for (const auto& members : plan.clusters) {
      if (members.empty()) ++empty_cluster;
      min_size = std::min(min_size, members.size());
      max_size = std::max(max_size, members.size());
    }
    if (plan.hierarchical() && max_size >= 2 * std::max(min_size, size_t{1}))
      ++skewed;
  }
  EXPECT_GE(sampled, 1);
  EXPECT_GE(faulted, 5);
  EXPECT_GE(deadlined, 3);
  EXPECT_GE(qa_nt, 1);
  EXPECT_GE(surged, 5);
  EXPECT_GE(bounded, 5);
  EXPECT_GE(admitted, 5);
  EXPECT_GE(deferred, 1);
  // Hierarchical topologies: multi-cluster plans, at least one degenerate
  // 1-cluster plan (the flat-equivalence path), an empty cluster, and a
  // skewed size split must all appear in the corpus.
  EXPECT_GE(clustered, 2);
  EXPECT_GE(degenerate + clustered, 3);
  EXPECT_GE(empty_cluster, 1);
  EXPECT_GE(skewed, 1);
}

}  // namespace
}  // namespace qa::sim
