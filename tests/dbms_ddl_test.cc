#include <gtest/gtest.h>

#include "dbms/ddl.h"
#include "dbms/engine.h"
#include "dbms/parser.h"

namespace qa::dbms {
namespace {

TEST(DdlTest, ParseCreateTable) {
  auto stmt = ParseStatement(
      "CREATE TABLE users (id INT, name STRING, score DOUBLE)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto* create = std::get_if<CreateTableStatement>(&*stmt);
  ASSERT_NE(create, nullptr);
  EXPECT_EQ(create->name, "users");
  ASSERT_EQ(create->columns.size(), 3u);
  EXPECT_EQ(create->columns[0].type, ValueType::kInt);
  EXPECT_EQ(create->columns[1].type, ValueType::kString);
  EXPECT_EQ(create->columns[2].type, ValueType::kDouble);
}

TEST(DdlTest, TypeAliases) {
  auto stmt = ParseStatement(
      "create table t (a integer, b real, c text, d varchar)");
  ASSERT_TRUE(stmt.ok());
  const auto* create = std::get_if<CreateTableStatement>(&*stmt);
  ASSERT_NE(create, nullptr);
  EXPECT_EQ(create->columns[0].type, ValueType::kInt);
  EXPECT_EQ(create->columns[1].type, ValueType::kDouble);
  EXPECT_EQ(create->columns[2].type, ValueType::kString);
  EXPECT_EQ(create->columns[3].type, ValueType::kString);
}

TEST(DdlTest, ParseInsertMultipleRows) {
  auto stmt = ParseStatement(
      "INSERT INTO t VALUES (1, 'a', 2.5), (2, 'b', 3.5), (3, NULL, NULL)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto* insert = std::get_if<InsertStatement>(&*stmt);
  ASSERT_NE(insert, nullptr);
  EXPECT_EQ(insert->table, "t");
  ASSERT_EQ(insert->rows.size(), 3u);
  EXPECT_EQ(insert->rows[0][0].AsInt(), 1);
  EXPECT_EQ(insert->rows[1][1].AsString(), "b");
  EXPECT_TRUE(insert->rows[2][1].is_null());
}

TEST(DdlTest, ParseErrors) {
  EXPECT_FALSE(ParseStatement("CREATE TABLE t ()").ok());
  EXPECT_FALSE(ParseStatement("CREATE TABLE t (a BLOB)").ok());
  EXPECT_FALSE(ParseStatement("CREATE TABLE (a INT)").ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO t VALUES").ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO t VALUES (1,)").ok());
  EXPECT_FALSE(ParseStatement("DROP TABLE t").ok());
  EXPECT_FALSE(ParseStatement("CREATE TABLE t (a INT) junk").ok());
}

TEST(DdlTest, ApplyCreateAndInsertEndToEnd) {
  Database db;
  auto create = ParseStatement("CREATE TABLE t (id INT, v DOUBLE)");
  ASSERT_TRUE(create.ok());
  auto created = ApplyStatement(&db, *create);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  EXPECT_EQ(*created, 0);
  EXPECT_TRUE(db.HasTable("t"));

  auto insert =
      ParseStatement("INSERT INTO t VALUES (1, 1.5), (2, 2.5), (3, 3.5)");
  ASSERT_TRUE(insert.ok());
  auto inserted = ApplyStatement(&db, *insert);
  ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();
  EXPECT_EQ(*inserted, 3);
  EXPECT_EQ(db.GetTable("t")->num_rows(), 3);

  // Query the inserted data through the SELECT path.
  auto select = ParseSelect("SELECT SUM(v) FROM t WHERE id > 1");
  ASSERT_TRUE(select.ok());
  auto result = ExecuteStatement(db, *select);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->table.row(0)[0].AsDouble(), 6.0);
}

TEST(DdlTest, InsertValidatesAllOrNothing) {
  Database db;
  ASSERT_TRUE(
      ApplyStatement(&db, *ParseStatement("CREATE TABLE t (id INT)")).ok());
  // Second row has wrong arity: nothing may be inserted.
  auto insert = ParseStatement("INSERT INTO t VALUES (1), (2, 3)");
  ASSERT_TRUE(insert.ok());
  auto applied = ApplyStatement(&db, *insert);
  EXPECT_FALSE(applied.ok());
  EXPECT_EQ(db.GetTable("t")->num_rows(), 0);
  // Type mismatch likewise.
  auto bad_type = ParseStatement("INSERT INTO t VALUES ('x')");
  ASSERT_TRUE(bad_type.ok());
  EXPECT_FALSE(ApplyStatement(&db, *bad_type).ok());
}

TEST(DdlTest, InsertIntoMissingTable) {
  Database db;
  auto insert = ParseStatement("INSERT INTO nope VALUES (1)");
  ASSERT_TRUE(insert.ok());
  EXPECT_EQ(ApplyStatement(&db, *insert).status().code(),
            util::StatusCode::kNotFound);
}

TEST(DdlTest, SelectRoutedThroughParseStatement) {
  auto stmt = ParseStatement("SELECT * FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_NE(std::get_if<SelectStatement>(&*stmt), nullptr);
  // And ApplyStatement refuses it (SELECT is not DDL/DML).
  Database db;
  EXPECT_FALSE(ApplyStatement(&db, *stmt).ok());
}

TEST(DdlTest, DuplicateCreateRejected) {
  Database db;
  auto create = ParseStatement("CREATE TABLE t (id INT)");
  ASSERT_TRUE(create.ok());
  ASSERT_TRUE(ApplyStatement(&db, *create).ok());
  EXPECT_EQ(ApplyStatement(&db, *create).status().code(),
            util::StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace qa::dbms
